// Package turtle reads and writes a pragmatic subset of the Turtle RDF
// syntax. The ontology hierarchies of the meta-data warehouse are
// maintained as Turtle documents — the role the Protégé export plays in
// Figure 4 of the paper.
//
// Supported syntax: @prefix directives, prefixed names, full IRIs, blank
// node labels, the 'a' keyword, statement continuation with ';' and ',',
// string literals with optional language tags or datatypes, integer
// shorthand literals, and '#' comments. Collections and anonymous blank
// nodes are not supported; the warehouse never produces them.
package turtle

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mdw/internal/rdf"
)

// Marshal renders triples as a Turtle document using the well-known
// prefixes. Triples are grouped by subject and predicates are merged with
// ';' continuation for readability.
func Marshal(ts []rdf.Triple) string {
	sorted := make([]rdf.Triple, len(ts))
	copy(sorted, ts)
	rdf.SortTriples(sorted)
	sorted = rdf.DedupTriples(sorted)

	used := usedPrefixes(sorted)
	var b strings.Builder
	for _, p := range used {
		fmt.Fprintf(&b, "@prefix %s: <%s> .\n", p, rdf.WellKnownPrefixes[p])
	}
	if len(used) > 0 {
		b.WriteByte('\n')
	}
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].S == sorted[i].S {
			j++
		}
		writeSubjectGroup(&b, sorted[i:j])
		i = j
	}
	return b.String()
}

// Write serializes triples as Turtle to w.
func Write(w io.Writer, ts []rdf.Triple) error {
	_, err := io.WriteString(w, Marshal(ts))
	return err
}

func usedPrefixes(ts []rdf.Triple) []string {
	set := make(map[string]bool)
	var note func(t rdf.Term)
	note = func(t rdf.Term) {
		if t.Kind != rdf.IRIKind {
			if t.Kind == rdf.LiteralKind && t.Datatype != "" {
				note(rdf.IRI(t.Datatype))
			}
			return
		}
		ns := rdf.Namespace(t.Value)
		for p, n := range rdf.WellKnownPrefixes {
			if n == ns {
				set[p] = true
			}
		}
	}
	for _, t := range ts {
		note(t.S)
		note(t.P)
		note(t.O)
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func writeSubjectGroup(b *strings.Builder, group []rdf.Triple) {
	b.WriteString(renderTerm(group[0].S))
	b.WriteByte(' ')
	for i := 0; i < len(group); {
		j := i
		for j < len(group) && group[j].P == group[i].P {
			j++
		}
		if i > 0 {
			b.WriteString(" ;\n    ")
		}
		b.WriteString(renderPredicate(group[i].P))
		b.WriteByte(' ')
		for k := i; k < j; k++ {
			if k > i {
				b.WriteString(", ")
			}
			b.WriteString(renderTerm(group[k].O))
		}
		i = j
	}
	b.WriteString(" .\n")
}

func renderPredicate(p rdf.Term) string {
	if p.Value == rdf.RDFType {
		return "a"
	}
	return renderTerm(p)
}

func renderTerm(t rdf.Term) string {
	switch t.Kind {
	case rdf.IRIKind:
		return renderIRI(t.Value)
	case rdf.BlankKind:
		return "_:" + t.Value
	default:
		return t.String()
	}
}

// renderIRI prefers a prefixed name but falls back to the full <iri>
// form when the local part contains characters the tokenizer would not
// read back (e.g. spaces or slashes in instance IRIs) — rdf.QName alone
// would emit a document that fails to re-parse.
func renderIRI(iri string) string {
	q := rdf.QName(iri)
	if strings.HasPrefix(q, "<") {
		return q
	}
	local := q[strings.IndexByte(q, ':')+1:]
	for i := 0; i < len(local); i++ {
		if !isPNChar(local[i]) {
			return "<" + iri + ">"
		}
	}
	return q
}

// Unmarshal parses a Turtle document.
func Unmarshal(doc string) ([]rdf.Triple, error) {
	p := &parser{
		toks:     nil,
		prefixes: map[string]string{},
	}
	toks, err := tokenize(doc)
	if err != nil {
		return nil, err
	}
	p.toks = toks
	return p.parse()
}

type tokKind int

const (
	tokIRI tokKind = iota
	tokPName
	tokBlank
	tokLiteral
	tokLangTag
	tokDatatypeSep // ^^
	tokA
	tokDot
	tokSemi
	tokComma
	tokPrefixDirective
	tokInteger
)

type token struct {
	kind tokKind
	text string // IRI value, pname, literal lexical form, etc.
	line int
}

func tokenize(doc string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(doc) {
		c := doc[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(doc) && doc[i] != '\n' {
				i++
			}
		case c == '<':
			end := strings.IndexByte(doc[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("turtle: line %d: unterminated IRI", line)
			}
			toks = append(toks, token{tokIRI, doc[i+1 : i+end], line})
			i += end + 1
		case c == '"':
			j := i + 1
			for j < len(doc) {
				if doc[j] == '\\' {
					j += 2
					continue
				}
				if doc[j] == '"' {
					break
				}
				if doc[j] == '\n' {
					line++
				}
				j++
			}
			if j >= len(doc) {
				return nil, fmt.Errorf("turtle: line %d: unterminated literal", line)
			}
			toks = append(toks, token{tokLiteral, rdf.UnescapeLiteral(doc[i+1 : j]), line})
			i = j + 1
		case c == '@':
			j := i + 1
			for j < len(doc) && (isPNChar(doc[j]) || doc[j] == '-') {
				j++
			}
			word := doc[i+1 : j]
			if word == "prefix" {
				toks = append(toks, token{tokPrefixDirective, word, line})
			} else {
				toks = append(toks, token{tokLangTag, word, line})
			}
			i = j
		case c == '^':
			if i+1 < len(doc) && doc[i+1] == '^' {
				toks = append(toks, token{tokDatatypeSep, "^^", line})
				i += 2
			} else {
				return nil, fmt.Errorf("turtle: line %d: stray '^'", line)
			}
		case c == '.':
			toks = append(toks, token{tokDot, ".", line})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == '_' && i+1 < len(doc) && doc[i+1] == ':':
			j := i + 2
			for j < len(doc) && isPNChar(doc[j]) {
				j++
			}
			toks = append(toks, token{tokBlank, doc[i+2 : j], line})
			i = j
		case c >= '0' && c <= '9' || c == '-' || c == '+':
			j := i + 1
			for j < len(doc) && doc[j] >= '0' && doc[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInteger, doc[i:j], line})
			i = j
		default:
			j := i
			for j < len(doc) && (isPNChar(doc[j]) || doc[j] == ':' || doc[j] == '.' && j+1 < len(doc) && isPNChar(doc[j+1])) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("turtle: line %d: unexpected character %q", line, c)
			}
			word := doc[i:j]
			if word == "a" {
				toks = append(toks, token{tokA, word, line})
			} else if strings.Contains(word, ":") {
				toks = append(toks, token{tokPName, word, line})
			} else {
				return nil, fmt.Errorf("turtle: line %d: unexpected token %q", line, word)
			}
			i = j
		}
	}
	return toks, nil
}

func isPNChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
}

func (p *parser) eof() bool   { return p.pos >= len(p.toks) }
func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	line := 0
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("turtle: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) parse() ([]rdf.Triple, error) {
	var out []rdf.Triple
	for !p.eof() {
		if p.peek().kind == tokPrefixDirective {
			if err := p.prefixDirective(); err != nil {
				return nil, err
			}
			continue
		}
		ts, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

func (p *parser) prefixDirective() error {
	p.next() // @prefix
	if p.eof() || p.peek().kind != tokPName {
		return p.errf("expected prefix name after @prefix")
	}
	pname := p.next().text
	if !strings.HasSuffix(pname, ":") {
		return p.errf("prefix name must end with ':'")
	}
	if p.eof() || p.peek().kind != tokIRI {
		return p.errf("expected IRI in @prefix")
	}
	iri := p.next().text
	if p.eof() || p.peek().kind != tokDot {
		return p.errf("expected '.' after @prefix")
	}
	p.next()
	p.prefixes[strings.TrimSuffix(pname, ":")] = iri
	return nil
}

func (p *parser) statement() ([]rdf.Triple, error) {
	subj, err := p.subjectTerm()
	if err != nil {
		return nil, err
	}
	var out []rdf.Triple
	for {
		pred, err := p.predicateTerm()
		if err != nil {
			return nil, err
		}
		for {
			obj, err := p.objectTerm()
			if err != nil {
				return nil, err
			}
			out = append(out, rdf.Triple{S: subj, P: pred, O: obj})
			if !p.eof() && p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if !p.eof() && p.peek().kind == tokSemi {
			p.next()
			// Allow trailing ';' before '.'.
			if !p.eof() && p.peek().kind == tokDot {
				break
			}
			continue
		}
		break
	}
	if p.eof() || p.peek().kind != tokDot {
		return nil, p.errf("expected '.' to end statement")
	}
	p.next()
	return out, nil
}

func (p *parser) subjectTerm() (rdf.Term, error) {
	if p.eof() {
		return rdf.Term{}, p.errf("expected subject")
	}
	t := p.next()
	switch t.kind {
	case tokIRI:
		return rdf.IRI(t.text), nil
	case tokPName:
		return p.expand(t)
	case tokBlank:
		return rdf.Blank(t.text), nil
	default:
		return rdf.Term{}, p.errf("invalid subject token %q", t.text)
	}
}

func (p *parser) predicateTerm() (rdf.Term, error) {
	if p.eof() {
		return rdf.Term{}, p.errf("expected predicate")
	}
	t := p.next()
	switch t.kind {
	case tokA:
		return rdf.Type, nil
	case tokIRI:
		return rdf.IRI(t.text), nil
	case tokPName:
		return p.expand(t)
	default:
		return rdf.Term{}, p.errf("invalid predicate token %q", t.text)
	}
}

func (p *parser) objectTerm() (rdf.Term, error) {
	if p.eof() {
		return rdf.Term{}, p.errf("expected object")
	}
	t := p.next()
	switch t.kind {
	case tokIRI:
		return rdf.IRI(t.text), nil
	case tokPName:
		return p.expand(t)
	case tokBlank:
		return rdf.Blank(t.text), nil
	case tokInteger:
		return rdf.TypedLiteral(t.text, rdf.XSDInteger), nil
	case tokLiteral:
		lex := t.text
		if !p.eof() {
			switch p.peek().kind {
			case tokLangTag:
				return rdf.LangLiteral(lex, p.next().text), nil
			case tokDatatypeSep:
				p.next()
				if p.eof() {
					return rdf.Term{}, p.errf("expected datatype after '^^'")
				}
				dt := p.next()
				switch dt.kind {
				case tokIRI:
					return rdf.TypedLiteral(lex, dt.text), nil
				case tokPName:
					term, err := p.expand(dt)
					if err != nil {
						return rdf.Term{}, err
					}
					return rdf.TypedLiteral(lex, term.Value), nil
				default:
					return rdf.Term{}, p.errf("invalid datatype token %q", dt.text)
				}
			}
		}
		return rdf.Literal(lex), nil
	default:
		return rdf.Term{}, p.errf("invalid object token %q", t.text)
	}
}

func (p *parser) expand(t token) (rdf.Term, error) {
	iri, ok := rdf.ExpandQName(t.text, p.prefixes)
	if !ok {
		return rdf.Term{}, fmt.Errorf("turtle: line %d: unknown prefix in %q", t.line, t.text)
	}
	return rdf.IRI(iri), nil
}
