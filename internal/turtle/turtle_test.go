package turtle

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
)

func TestMarshalGroupsBySubject(t *testing.T) {
	ts := []rdf.Triple{
		rdf.T(rdf.IRI(rdf.DMNS+"Customer"), rdf.Type, rdf.Class),
		rdf.T(rdf.IRI(rdf.DMNS+"Customer"), rdf.SubClassOf, rdf.IRI(rdf.DMNS+"Party")),
		rdf.T(rdf.IRI(rdf.DMNS+"Customer"), rdf.Label, rdf.Literal("Customer")),
	}
	doc := Marshal(ts)
	if strings.Count(doc, "dm:Customer") != 1 {
		t.Errorf("subject should appear once:\n%s", doc)
	}
	if !strings.Contains(doc, "@prefix dm:") {
		t.Errorf("missing dm prefix:\n%s", doc)
	}
	if !strings.Contains(doc, " a ") {
		t.Errorf("rdf:type should render as 'a':\n%s", doc)
	}
}

func TestRoundTrip(t *testing.T) {
	ts := []rdf.Triple{
		rdf.T(rdf.IRI(rdf.DMNS+"Customer"), rdf.Type, rdf.Class),
		rdf.T(rdf.IRI(rdf.DMNS+"Customer"), rdf.SubClassOf, rdf.IRI(rdf.DMNS+"Party")),
		rdf.T(rdf.IRI(rdf.DMNS+"Customer"), rdf.Label, rdf.Literal("The \"Customer\" class")),
		rdf.T(rdf.IRI(rdf.DMNS+"Customer"), rdf.IRI(rdf.DMNS+"priority"), rdf.TypedLiteral("3", rdf.XSDInteger)),
		rdf.T(rdf.IRI(rdf.DMNS+"Customer"), rdf.IRI(rdf.RDFSComment), rdf.LangLiteral("Kunde", "de")),
		rdf.T(rdf.Blank("b0"), rdf.Label, rdf.Literal("anonymous")),
		rdf.T(rdf.IRI("http://other.example/x"), rdf.Label, rdf.Literal("no prefix")),
	}
	doc := Marshal(ts)
	got, err := Unmarshal(doc)
	if err != nil {
		t.Fatalf("Unmarshal: %v\ndoc:\n%s", err, doc)
	}
	rdf.SortTriples(ts)
	rdf.SortTriples(got)
	if len(got) != len(ts) {
		t.Fatalf("got %d triples, want %d\ndoc:\n%s", len(got), len(ts), doc)
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Errorf("triple %d:\n got %v\nwant %v", i, got[i], ts[i])
		}
	}
}

func TestParseHandAuthored(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

# The hierarchy snippet from Figure 3.
ex:Individual rdfs:subClassOf ex:Party ;
    rdfs:label "Individual", "Person"@en .
ex:Institution rdfs:subClassOf ex:Party .
ex:count ex:value 42 .
_:b ex:p ex:Individual .
`
	ts, err := Unmarshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 6 {
		t.Fatalf("got %d triples: %v", len(ts), ts)
	}
	want := rdf.T(rdf.IRI("http://example.org/Individual"), rdf.SubClassOf, rdf.IRI("http://example.org/Party"))
	found := false
	for _, tr := range ts {
		if tr == want {
			found = true
		}
	}
	if !found {
		t.Errorf("missing %v in %v", want, ts)
	}
}

func TestParseAKeyword(t *testing.T) {
	ts, err := Unmarshal(`@prefix ex: <http://example.org/> .
ex:x a ex:Thing .`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].P != rdf.Type {
		t.Errorf("got %v", ts)
	}
}

func TestWellKnownPrefixFallback(t *testing.T) {
	// rdf:/rdfs:/owl: should resolve without @prefix declarations.
	ts, err := Unmarshal(`dm:Customer rdfs:subClassOf dm:Party .`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].S != rdf.IRI(rdf.DMNS+"Customer") {
		t.Errorf("got %v", ts)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`ex:x ex:p ex:o .`,                  // unknown prefix
		`@prefix ex <http://e/> .`,          // missing colon
		`@prefix ex: "nope" .`,              // not an IRI
		`dm:x rdfs:label "unterminated .`,   // literal
		`dm:x rdfs:label`,                   // missing dot
		`dm:x .`,                            // missing predicate/object
		`<http://e/x> <http://e/p> "v"^^ .`, // missing datatype
	}
	for _, doc := range bad {
		if _, err := Unmarshal(doc); err == nil {
			t.Errorf("expected error for %q", doc)
		}
	}
}

func TestMarshalUnsafeLocalPartFallsBackToIRI(t *testing.T) {
	// The local part contains a space, so a prefixed name would not
	// tokenize on the way back in; Marshal must emit the full IRI form.
	in := rdf.Triple{
		S: rdf.IRI(rdf.DMNS + "foo bar"),
		P: rdf.IRI(rdf.DMNS + "has name"),
		O: rdf.IRI(rdf.InstNS + "app1/db1"),
	}
	doc := Marshal([]rdf.Triple{in})
	ts, err := Unmarshal(doc)
	if err != nil {
		t.Fatalf("re-parse failed: %v\ndoc: %q", err, doc)
	}
	if len(ts) != 1 || ts[0] != in {
		t.Fatalf("round trip changed triple: %v (doc %q)", ts, doc)
	}
}
