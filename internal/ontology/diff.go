package ontology

import (
	"fmt"
	"sort"
	"strings"

	"mdw/internal/rdf"
)

// Diff describes the changes between two versions of a hierarchy — the
// review artifact for the paper's worry that "it is not clear how
// disciplined users will use the flexibility that RDF graphs provide":
// every hierarchy edit between releases is enumerable.
type Diff struct {
	ClassesAdded      []string
	ClassesRemoved    []string
	PropertiesAdded   []string
	PropertiesRemoved []string
	// SuperChanges records classes whose direct superclasses changed.
	SuperChanges []SuperChange
	// LabelChanges records classes or properties whose label changed.
	LabelChanges []LabelChange
}

// SuperChange is one class whose parents changed.
type SuperChange struct {
	Class     string
	OldSupers []string
	NewSupers []string
}

// LabelChange is one renamed class or property.
type LabelChange struct {
	IRI      string
	OldLabel string
	NewLabel string
}

// Empty reports whether the diff contains no changes.
func (d *Diff) Empty() bool {
	return len(d.ClassesAdded) == 0 && len(d.ClassesRemoved) == 0 &&
		len(d.PropertiesAdded) == 0 && len(d.PropertiesRemoved) == 0 &&
		len(d.SuperChanges) == 0 && len(d.LabelChanges) == 0
}

// DiffOntologies compares two hierarchies.
func DiffOntologies(old, new *Ontology) *Diff {
	d := &Diff{}
	oldClasses := map[string]*Class{}
	for _, iri := range old.Classes() {
		oldClasses[iri] = old.Class(iri)
	}
	newClasses := map[string]*Class{}
	for _, iri := range new.Classes() {
		newClasses[iri] = new.Class(iri)
	}
	for iri := range newClasses {
		if _, ok := oldClasses[iri]; !ok {
			d.ClassesAdded = append(d.ClassesAdded, iri)
		}
	}
	for iri, oc := range oldClasses {
		nc, ok := newClasses[iri]
		if !ok {
			d.ClassesRemoved = append(d.ClassesRemoved, iri)
			continue
		}
		if !sameStringSet(oc.Supers, nc.Supers) {
			d.SuperChanges = append(d.SuperChanges, SuperChange{
				Class:     iri,
				OldSupers: sortedCopy(oc.Supers),
				NewSupers: sortedCopy(nc.Supers),
			})
		}
		if oc.Label != nc.Label {
			d.LabelChanges = append(d.LabelChanges, LabelChange{IRI: iri, OldLabel: oc.Label, NewLabel: nc.Label})
		}
	}
	oldProps := map[string]*Property{}
	for _, iri := range old.Properties() {
		oldProps[iri] = old.Property(iri)
	}
	for _, iri := range new.Properties() {
		if _, ok := oldProps[iri]; !ok {
			d.PropertiesAdded = append(d.PropertiesAdded, iri)
		}
	}
	for iri, op := range oldProps {
		np := new.Property(iri)
		if np == nil {
			d.PropertiesRemoved = append(d.PropertiesRemoved, iri)
			continue
		}
		if op.Label != np.Label {
			d.LabelChanges = append(d.LabelChanges, LabelChange{IRI: iri, OldLabel: op.Label, NewLabel: np.Label})
		}
	}
	sort.Strings(d.ClassesAdded)
	sort.Strings(d.ClassesRemoved)
	sort.Strings(d.PropertiesAdded)
	sort.Strings(d.PropertiesRemoved)
	sort.Slice(d.SuperChanges, func(i, j int) bool { return d.SuperChanges[i].Class < d.SuperChanges[j].Class })
	sort.Slice(d.LabelChanges, func(i, j int) bool { return d.LabelChanges[i].IRI < d.LabelChanges[j].IRI })
	return d
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if !set[s] {
			return false
		}
	}
	return true
}

func sortedCopy(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

// Format renders the diff for review.
func (d *Diff) Format() string {
	if d.Empty() {
		return "no hierarchy changes\n"
	}
	var b strings.Builder
	section := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s (%d):\n", title, len(items))
		for _, iri := range items {
			fmt.Fprintf(&b, "  %s\n", rdf.LocalName(iri))
		}
	}
	section("classes added", d.ClassesAdded)
	section("classes removed", d.ClassesRemoved)
	section("properties added", d.PropertiesAdded)
	section("properties removed", d.PropertiesRemoved)
	for _, sc := range d.SuperChanges {
		fmt.Fprintf(&b, "superclasses of %s: %v -> %v\n",
			rdf.LocalName(sc.Class), locals(sc.OldSupers), locals(sc.NewSupers))
	}
	for _, lc := range d.LabelChanges {
		fmt.Fprintf(&b, "label of %s: %q -> %q\n", rdf.LocalName(lc.IRI), lc.OldLabel, lc.NewLabel)
	}
	return b.String()
}

func locals(iris []string) []string {
	out := make([]string, len(iris))
	for i, iri := range iris {
		out[i] = rdf.LocalName(iri)
	}
	return out
}
