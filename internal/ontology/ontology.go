// Package ontology builds and maintains the meta-data hierarchies of the
// warehouse: the class-to-class and property-to-property relationships
// that form the top layer of Figure 3.
//
// In the paper these hierarchies are "designed and maintained in a
// popular open-source tool called Protégé" and "exported from this tool
// as an ontology file" (Section III.B). This package is that editor and
// exporter: hierarchies are constructed programmatically (with multiple
// inheritance, which the paper calls out explicitly), validated, and
// exported as triples or Turtle for insertion into the staging tables.
package ontology

import (
	"fmt"
	"sort"

	"mdw/internal/rdf"
	"mdw/internal/turtle"
)

// Class is one class definition in the hierarchy.
type Class struct {
	IRI     string
	Label   string
	Comment string
	// Supers lists direct superclass IRIs (multiple inheritance allowed).
	Supers []string
}

// Property is one property definition.
type Property struct {
	IRI     string
	Label   string
	Comment string
	// Supers lists direct super-property IRIs.
	Supers []string
	// Domains and Ranges attach the property to classes (the meta-data
	// schema layer of Table I).
	Domains []string
	Ranges  []string
	// Symmetric and Transitive mark OWL property characteristics; the
	// paper's example of a symmetric property is isRelatedTo.
	Symmetric  bool
	Transitive bool
	// InverseOf optionally names the inverse property.
	InverseOf string
}

// Ontology is an editable hierarchy of classes and properties.
type Ontology struct {
	name       string
	classes    map[string]*Class
	properties map[string]*Property
}

// New returns an empty ontology with the given name.
func New(name string) *Ontology {
	return &Ontology{
		name:       name,
		classes:    make(map[string]*Class),
		properties: make(map[string]*Property),
	}
}

// Name returns the ontology name.
func (o *Ontology) Name() string { return o.name }

// AddClass defines (or redefines) a class with the given direct
// superclasses.
func (o *Ontology) AddClass(iri, label string, supers ...string) *Class {
	c := &Class{IRI: iri, Label: label, Supers: append([]string(nil), supers...)}
	o.classes[iri] = c
	return c
}

// AddSuper adds a direct superclass to an existing class, creating the
// class entry if needed.
func (o *Ontology) AddSuper(iri, super string) {
	c, ok := o.classes[iri]
	if !ok {
		c = o.AddClass(iri, rdf.LocalName(iri))
	}
	for _, s := range c.Supers {
		if s == super {
			return
		}
	}
	c.Supers = append(c.Supers, super)
}

// AddProperty defines (or redefines) a property.
func (o *Ontology) AddProperty(p Property) *Property {
	cp := p
	o.properties[p.IRI] = &cp
	return &cp
}

// Class returns the class definition for iri, or nil.
func (o *Ontology) Class(iri string) *Class { return o.classes[iri] }

// Property returns the property definition for iri, or nil.
func (o *Ontology) Property(iri string) *Property { return o.properties[iri] }

// Classes returns all class IRIs, sorted.
func (o *Ontology) Classes() []string {
	out := make([]string, 0, len(o.classes))
	for iri := range o.classes {
		out = append(out, iri)
	}
	sort.Strings(out)
	return out
}

// Properties returns all property IRIs, sorted.
func (o *Ontology) Properties() []string {
	out := make([]string, 0, len(o.properties))
	for iri := range o.properties {
		out = append(out, iri)
	}
	sort.Strings(out)
	return out
}

// Superclasses returns the transitive superclasses of iri (not including
// iri itself), in breadth-first order.
func (o *Ontology) Superclasses(iri string) []string {
	return o.closure(iri, func(x string) []string {
		if c := o.classes[x]; c != nil {
			return c.Supers
		}
		return nil
	})
}

// Subclasses returns the transitive subclasses of iri (not including iri
// itself).
func (o *Ontology) Subclasses(iri string) []string {
	children := map[string][]string{}
	for _, c := range o.classes {
		for _, s := range c.Supers {
			children[s] = append(children[s], c.IRI)
		}
	}
	out := o.closure(iri, func(x string) []string { return children[x] })
	sort.Strings(out)
	return out
}

func (o *Ontology) closure(start string, next func(string) []string) []string {
	seen := map[string]bool{start: true}
	frontier := []string{start}
	var out []string
	for len(frontier) > 0 {
		var nf []string
		for _, n := range frontier {
			for _, m := range next(n) {
				if !seen[m] {
					seen[m] = true
					out = append(out, m)
					nf = append(nf, m)
				}
			}
		}
		frontier = nf
	}
	return out
}

// Roots returns classes with no superclasses.
func (o *Ontology) Roots() []string {
	var out []string
	for iri, c := range o.classes {
		if len(c.Supers) == 0 {
			out = append(out, iri)
		}
	}
	sort.Strings(out)
	return out
}

// Validate reports structural problems: subclass cycles and references to
// undefined superclasses (the latter is a warning-level issue because the
// warehouse is built incrementally, but surfacing it keeps hierarchies
// honest before a release).
func (o *Ontology) Validate() []error {
	var errs []error
	// Cycle detection via DFS coloring.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = gray
		if c := o.classes[n]; c != nil {
			for _, s := range c.Supers {
				switch color[s] {
				case gray:
					errs = append(errs, fmt.Errorf("ontology %s: subclass cycle through %s and %s", o.name, n, s))
					return false
				case white:
					if !visit(s) {
						return false
					}
				}
			}
		}
		color[n] = black
		return true
	}
	for iri := range o.classes {
		if color[iri] == white {
			visit(iri)
		}
	}
	for iri, c := range o.classes {
		for _, s := range c.Supers {
			if _, ok := o.classes[s]; !ok {
				errs = append(errs, fmt.Errorf("ontology %s: class %s references undefined superclass %s", o.name, iri, s))
			}
		}
	}
	for iri, p := range o.properties {
		for _, d := range p.Domains {
			if _, ok := o.classes[d]; !ok {
				errs = append(errs, fmt.Errorf("ontology %s: property %s references undefined domain %s", o.name, iri, d))
			}
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

// Triples exports the ontology as RDF triples — the "ontology file" that
// the Figure 4 pipeline inserts into the staging tables.
func (o *Ontology) Triples() []rdf.Triple {
	var out []rdf.Triple
	for _, iri := range o.Classes() {
		c := o.classes[iri]
		subj := rdf.IRI(iri)
		out = append(out, rdf.T(subj, rdf.Type, rdf.Class))
		if c.Label != "" {
			out = append(out, rdf.T(subj, rdf.Label, rdf.Literal(c.Label)))
		}
		if c.Comment != "" {
			out = append(out, rdf.T(subj, rdf.IRI(rdf.RDFSComment), rdf.Literal(c.Comment)))
		}
		for _, s := range c.Supers {
			out = append(out, rdf.T(subj, rdf.SubClassOf, rdf.IRI(s)))
		}
	}
	for _, iri := range o.Properties() {
		p := o.properties[iri]
		subj := rdf.IRI(iri)
		out = append(out, rdf.T(subj, rdf.Type, rdf.IRI(rdf.RDFProperty)))
		if p.Label != "" {
			out = append(out, rdf.T(subj, rdf.Label, rdf.Literal(p.Label)))
		}
		if p.Comment != "" {
			out = append(out, rdf.T(subj, rdf.IRI(rdf.RDFSComment), rdf.Literal(p.Comment)))
		}
		for _, s := range p.Supers {
			out = append(out, rdf.T(subj, rdf.SubPropertyOf, rdf.IRI(s)))
		}
		for _, d := range p.Domains {
			out = append(out, rdf.T(subj, rdf.Domain, rdf.IRI(d)))
		}
		for _, r := range p.Ranges {
			out = append(out, rdf.T(subj, rdf.Range, rdf.IRI(r)))
		}
		if p.Symmetric {
			out = append(out, rdf.T(subj, rdf.Type, rdf.IRI(rdf.OWLSymmetricProperty)))
		}
		if p.Transitive {
			out = append(out, rdf.T(subj, rdf.Type, rdf.IRI(rdf.OWLTransitiveProperty)))
		}
		if p.InverseOf != "" {
			out = append(out, rdf.T(subj, rdf.IRI(rdf.OWLInverseOf), rdf.IRI(p.InverseOf)))
		}
	}
	return out
}

// Turtle exports the ontology as a Turtle document.
func (o *Ontology) Turtle() string {
	return turtle.Marshal(o.Triples())
}

// FromTriples reconstructs an ontology from exported triples.
func FromTriples(name string, ts []rdf.Triple) *Ontology {
	o := New(name)
	ensureClass := func(iri string) *Class {
		c, ok := o.classes[iri]
		if !ok {
			c = &Class{IRI: iri}
			o.classes[iri] = c
		}
		return c
	}
	ensureProp := func(iri string) *Property {
		p, ok := o.properties[iri]
		if !ok {
			p = &Property{IRI: iri}
			o.properties[iri] = p
		}
		return p
	}
	for _, t := range ts {
		if !t.S.IsIRI() {
			continue
		}
		s := t.S.Value
		switch t.P.Value {
		case rdf.RDFType:
			switch t.O.Value {
			case rdf.OWLClass, rdf.RDFSClass:
				ensureClass(s)
			case rdf.RDFProperty, rdf.OWLObjectProperty, rdf.OWLDatatypeProperty:
				ensureProp(s)
			case rdf.OWLSymmetricProperty:
				ensureProp(s).Symmetric = true
			case rdf.OWLTransitiveProperty:
				ensureProp(s).Transitive = true
			}
		case rdf.RDFSSubClassOf:
			c := ensureClass(s)
			c.Supers = append(c.Supers, t.O.Value)
			ensureClass(t.O.Value)
		case rdf.RDFSSubPropertyOf:
			p := ensureProp(s)
			p.Supers = append(p.Supers, t.O.Value)
			ensureProp(t.O.Value)
		case rdf.RDFSDomain:
			ensureProp(s).Domains = append(ensureProp(s).Domains, t.O.Value)
		case rdf.RDFSRange:
			ensureProp(s).Ranges = append(ensureProp(s).Ranges, t.O.Value)
		case rdf.OWLInverseOf:
			ensureProp(s).InverseOf = t.O.Value
		case rdf.RDFSLabel:
			if c, ok := o.classes[s]; ok {
				c.Label = t.O.Value
			} else if p, ok := o.properties[s]; ok {
				p.Label = t.O.Value
			} else {
				// Labels may precede declarations; attach lazily as class
				// label once the declaration arrives — simplest is to
				// create the class now and let a later property
				// declaration steal it if needed.
				ensureClass(s).Label = t.O.Value
			}
		case rdf.RDFSComment:
			if c, ok := o.classes[s]; ok {
				c.Comment = t.O.Value
			} else if p, ok := o.properties[s]; ok {
				p.Comment = t.O.Value
			}
		}
	}
	return o
}

// FromTurtle parses a Turtle ontology document.
func FromTurtle(name, doc string) (*Ontology, error) {
	ts, err := turtle.Unmarshal(doc)
	if err != nil {
		return nil, err
	}
	return FromTriples(name, ts), nil
}
