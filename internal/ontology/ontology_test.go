package ontology

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
)

func ex(s string) string { return "http://example.org/" + s }

func TestAddAndQueryClasses(t *testing.T) {
	o := New("test")
	o.AddClass(ex("Party"), "Party")
	o.AddClass(ex("Partner"), "Partner", ex("Party"))
	o.AddClass(ex("Individual"), "Individual", ex("Partner"))
	o.AddClass(ex("Institution"), "Institution", ex("Partner"))

	if got := o.Superclasses(ex("Individual")); len(got) != 2 {
		t.Errorf("Superclasses(Individual) = %v", got)
	}
	subs := o.Subclasses(ex("Party"))
	if len(subs) != 3 {
		t.Errorf("Subclasses(Party) = %v", subs)
	}
	if got := o.Roots(); len(got) != 1 || got[0] != ex("Party") {
		t.Errorf("Roots = %v", got)
	}
	if o.Class(ex("Party")) == nil || o.Class(ex("Nope")) != nil {
		t.Error("Class lookup wrong")
	}
}

func TestMultipleInheritance(t *testing.T) {
	o := New("test")
	o.AddClass(ex("A"), "A")
	o.AddClass(ex("B"), "B")
	o.AddClass(ex("C"), "C", ex("A"), ex("B"))
	supers := o.Superclasses(ex("C"))
	if len(supers) != 2 {
		t.Errorf("Superclasses(C) = %v", supers)
	}
}

func TestAddSuperIdempotent(t *testing.T) {
	o := New("test")
	o.AddClass(ex("A"), "A")
	o.AddSuper(ex("B"), ex("A"))
	o.AddSuper(ex("B"), ex("A"))
	if c := o.Class(ex("B")); len(c.Supers) != 1 {
		t.Errorf("Supers = %v", c.Supers)
	}
}

func TestValidateCycle(t *testing.T) {
	o := New("test")
	o.AddClass(ex("A"), "A", ex("B"))
	o.AddClass(ex("B"), "B", ex("A"))
	errs := o.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("cycle not detected: %v", errs)
	}
}

func TestValidateUndefinedReferences(t *testing.T) {
	o := New("test")
	o.AddClass(ex("A"), "A", ex("Ghost"))
	o.AddProperty(Property{IRI: ex("p"), Domains: []string{ex("GhostClass")}})
	errs := o.Validate()
	if len(errs) != 2 {
		t.Errorf("errs = %v", errs)
	}
}

func TestTriplesExport(t *testing.T) {
	o := New("test")
	o.AddClass(ex("Party"), "Party")
	o.AddClass(ex("Individual"), "Individual", ex("Party"))
	o.AddProperty(Property{
		IRI: ex("isRelatedTo"), Label: "is related to", Symmetric: true,
		Domains: []string{ex("Party")}, Ranges: []string{ex("Party")},
	})
	ts := o.Triples()
	want := []rdf.Triple{
		rdf.T(rdf.IRI(ex("Individual")), rdf.SubClassOf, rdf.IRI(ex("Party"))),
		rdf.T(rdf.IRI(ex("isRelatedTo")), rdf.Type, rdf.IRI(rdf.OWLSymmetricProperty)),
		rdf.T(rdf.IRI(ex("isRelatedTo")), rdf.Domain, rdf.IRI(ex("Party"))),
	}
	for _, w := range want {
		found := false
		for _, tr := range ts {
			if tr == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %v", w)
		}
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	o := New("rt")
	o.AddClass(ex("Party"), "Party")
	o.AddClass(ex("Individual"), "Individual", ex("Party"))
	o.AddProperty(Property{IRI: ex("feeds"), Label: "feeds", Transitive: true, InverseOf: ex("fedBy")})
	doc := o.Turtle()
	back, err := FromTurtle("rt2", doc)
	if err != nil {
		t.Fatalf("FromTurtle: %v\n%s", err, doc)
	}
	if back.Class(ex("Individual")) == nil {
		t.Fatal("Individual lost in round trip")
	}
	if got := back.Class(ex("Individual")).Supers; len(got) != 1 || got[0] != ex("Party") {
		t.Errorf("Supers = %v", got)
	}
	p := back.Property(ex("feeds"))
	if p == nil || !p.Transitive || p.InverseOf != ex("fedBy") {
		t.Errorf("property lost: %+v", p)
	}
	if back.Class(ex("Party")).Label != "Party" {
		t.Errorf("label lost: %+v", back.Class(ex("Party")))
	}
}

func TestDWHOntology(t *testing.T) {
	o := DWH()
	if errs := o.Validate(); len(errs) != 0 {
		t.Fatalf("DWH ontology invalid: %v", errs)
	}
	dm := func(s string) string { return rdf.DMNS + s }
	// The Figure 5 narrowing: Application1_View_Column sits under both
	// Attribute (via View_Column/Column) and Application1_Item and
	// Interface_Item.
	supers := o.Superclasses(dm("Application1_View_Column"))
	wantSupers := []string{dm("View_Column"), dm("Column"), dm("Attribute"), dm("Application1_Item"), dm("Interface_Item"), dm("Application_Item"), dm("Item")}
	for _, w := range wantSupers {
		found := false
		for _, s := range supers {
			if s == w {
				found = true
			}
		}
		if !found {
			t.Errorf("Application1_View_Column missing ancestor %s", rdf.LocalName(w))
		}
	}
	// Business side: Individual is a Partner is a Party.
	supers = o.Superclasses(dm("Individual"))
	if len(supers) < 2 {
		t.Errorf("Individual superclasses = %v", supers)
	}
	// Every class has a label (search groups by label).
	for _, iri := range o.Classes() {
		if o.Class(iri).Label == "" {
			t.Errorf("class %s has no label", iri)
		}
	}
	// Export is parseable.
	if _, err := FromTurtle("x", o.Turtle()); err != nil {
		t.Errorf("DWH Turtle unparseable: %v", err)
	}
}
