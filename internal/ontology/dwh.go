package ontology

import "mdw/internal/rdf"

// DWH constructs the data-warehouse meta-data hierarchy used throughout
// the paper's examples: the technical classes of Figures 3/5/8 (source
// file columns, table columns, view columns, applications, interfaces)
// and the business concepts of Figure 2 (Party, Individual, Institution,
// Customer/Client), wired with the multiple inheritance the search
// algorithm depends on ("most instances are members of several classes
// due to multiple inheritance in the meta-data hierarchies").
func DWH() *Ontology {
	o := New("dwh")
	dm := func(s string) string { return rdf.DMNS + s }

	// Generic roots.
	o.AddClass(dm("Item"), "Item")
	o.AddClass(dm("Application_Item"), "Application Item", dm("Item"))
	o.AddClass(dm("Interface_Item"), "Interface Item", dm("Item"))
	o.AddClass(dm("Application1_Item"), "Application1 Item", dm("Application_Item"))

	// Technical (physical-layer) classes.
	o.AddClass(dm("Application"), "Application", dm("Item"))
	o.AddClass(dm("Source_Application"), "Source Application", dm("Application"))
	o.AddClass(dm("Database"), "Database", dm("Item"))
	o.AddClass(dm("Schema"), "Schema", dm("Item"))
	o.AddClass(dm("Table"), "Table", dm("Item"))
	o.AddClass(dm("View"), "View", dm("Item"))
	o.AddClass(dm("File"), "File", dm("Item"))
	o.AddClass(dm("Source_File"), "Source File", dm("File"), dm("Interface_Item"))
	o.AddClass(dm("Interface"), "Interface", dm("Item"))
	o.AddClass(dm("Mapping"), "Mapping", dm("Item"))
	o.AddClass(dm("Data_Flow"), "Data Flow", dm("Item"))
	o.AddClass(dm("Report"), "Report", dm("Item"))
	o.AddClass(dm("Data_Mart"), "Data Mart", dm("Item"))

	// Attribute hierarchy: the Figure 5 search narrows to
	// Application1_View_Column through this lattice.
	o.AddClass(dm("Attribute"), "Attribute", dm("Item"))
	o.AddClass(dm("Conceptual_Attribute"), "Conceptual Attribute", dm("Attribute"))
	o.AddClass(dm("Column"), "Column", dm("Attribute"))
	o.AddClass(dm("Source_Column"), "Source Column", dm("Column"), dm("Interface_Item"))
	o.AddClass(dm("Table_Column"), "Table Column", dm("Column"))
	o.AddClass(dm("View_Column"), "View Column", dm("Column"))
	o.AddClass(dm("Source_File_Column"), "Source File Column", dm("Source_Column"))
	o.AddClass(dm("Application1_Table_Column"), "Application1 Table Column",
		dm("Table_Column"), dm("Application1_Item"))
	o.AddClass(dm("Application1_View_Column"), "Application1 View Column",
		dm("View_Column"), dm("Application1_Item"), dm("Interface_Item"))

	// Roles (Section II): business and IT roles.
	o.AddClass(dm("User"), "User", dm("Item"))
	o.AddClass(dm("Role"), "Role", dm("Item"))
	o.AddClass(dm("Business_Role"), "Business Role", dm("Role"))
	o.AddClass(dm("IT_Role"), "IT Role", dm("Role"))
	o.AddClass(dm("Business_Owner"), "Business Owner", dm("Business_Role"))
	o.AddClass(dm("Business_User"), "Business User", dm("Business_Role"))
	o.AddClass(dm("Administrator"), "Administrator", dm("IT_Role"))
	o.AddClass(dm("Support"), "Support", dm("IT_Role"))

	// Business concepts (Figure 2): the Partner generalization.
	o.AddClass(dm("Business_Concept"), "Business Concept", dm("Item"))
	o.AddClass(dm("Party"), "Party", dm("Business_Concept"))
	o.AddClass(dm("Partner"), "Partner", dm("Party"))
	o.AddClass(dm("Individual"), "Individual", dm("Partner"))
	o.AddClass(dm("Institution"), "Institution", dm("Partner"))
	o.AddClass(dm("Customer"), "Customer", dm("Party"))
	o.AddClass(dm("Client"), "Client", dm("Customer"))
	o.AddClass(dm("Account"), "Account", dm("Business_Concept"))
	o.AddClass(dm("Transaction"), "Transaction", dm("Business_Concept"))
	o.AddClass(dm("Entity"), "Entity", dm("Business_Concept"))
	o.AddClass(dm("Domain"), "Domain", dm("Business_Concept"))
	o.AddClass(dm("Source_Domain"), "Source Domain", dm("Domain"))

	// Physical-level meta-data (Section II / Figure 9): technologies and
	// log files.
	o.AddClass(dm("Technology"), "Technology", dm("Item"))
	o.AddClass(dm("Programming_Language"), "Programming Language", dm("Technology"))
	o.AddClass(dm("Software_Product"), "Software Product", dm("Technology"))
	o.AddClass(dm("Log_File"), "Log File", dm("File"))

	// DWH areas (Figure 2): the three pipeline stages.
	o.AddClass(dm("DWH_Area"), "DWH Area", dm("Item"))
	o.AddClass(dm("Inbound_Area"), "DWH Inbound Interface", dm("DWH_Area"))
	o.AddClass(dm("Integration_Area"), "DWH Integration Area", dm("DWH_Area"))
	o.AddClass(dm("Data_Mart_Area"), "DWH Data Mart Area", dm("DWH_Area"))

	// Properties.
	o.AddProperty(Property{
		IRI: rdf.MDWHasName, Label: "has name",
		Domains: []string{dm("Item")},
	})
	o.AddProperty(Property{
		IRI: rdf.MDWIsMappedTo, Label: "is mapped to",
		Domains: []string{dm("Attribute")}, Ranges: []string{dm("Attribute")},
	})
	o.AddProperty(Property{
		IRI: rdf.MDWFeeds, Label: "feeds", Transitive: false,
	})
	o.AddProperty(Property{
		IRI: rdf.MDWIsRelatedTo, Label: "is related to", Symmetric: true,
	})
	o.AddProperty(Property{IRI: rdf.MDWInArea, Label: "in area"})
	o.AddProperty(Property{IRI: rdf.MDWInLayer, Label: "in layer"})
	o.AddProperty(Property{IRI: rdf.MDWOwnedBy, Label: "owned by"})
	o.AddProperty(Property{IRI: rdf.MDWHasRole, Label: "has role"})
	o.AddProperty(Property{IRI: rdf.MDWPartOf, Label: "part of", Transitive: true})
	o.AddProperty(Property{IRI: rdf.MDWHasColumn, Label: "has column"})
	o.AddProperty(Property{IRI: rdf.MDWHasTable, Label: "has table"})
	o.AddProperty(Property{IRI: rdf.MDWHasSchema, Label: "has schema"})
	o.AddProperty(Property{IRI: rdf.MDWImplements, Label: "implements"})
	o.AddProperty(Property{IRI: rdf.MDWUsesDB, Label: "uses database"})
	o.AddProperty(Property{IRI: rdf.MDWConnectsTo, Label: "connects to"})
	o.AddProperty(Property{IRI: rdf.MDWSourceOf, Label: "source of", InverseOf: rdf.MDWTargetOf})
	o.AddProperty(Property{IRI: rdf.MDWTargetOf, Label: "target of"})
	o.AddProperty(Property{IRI: rdf.MDWSynonymOf, Label: "synonym of", Symmetric: true})
	o.AddProperty(Property{IRI: rdf.MDWHomonymOf, Label: "homonym of", Symmetric: true})
	return o
}
