package ontology

import (
	"strings"
	"testing"
)

func TestDiffEmpty(t *testing.T) {
	a, b := DWH(), DWH()
	d := DiffOntologies(a, b)
	if !d.Empty() {
		t.Errorf("identical ontologies differ: %s", d.Format())
	}
	if d.Format() != "no hierarchy changes\n" {
		t.Errorf("empty format = %q", d.Format())
	}
}

func TestDiffDetectsChanges(t *testing.T) {
	old := New("v1")
	old.AddClass(ex("Party"), "Party")
	old.AddClass(ex("Customer"), "Customer", ex("Party"))
	old.AddClass(ex("Legacy"), "Legacy")
	old.AddProperty(Property{IRI: ex("hasName"), Label: "has name"})
	old.AddProperty(Property{IRI: ex("oldProp"), Label: "old"})

	newer := New("v2")
	newer.AddClass(ex("Party"), "Party")
	// Customer reparented under a new Business_Concept root.
	newer.AddClass(ex("Business_Concept"), "Business Concept")
	newer.AddClass(ex("Customer"), "Customer", ex("Business_Concept"))
	// Legacy removed, Account added.
	newer.AddClass(ex("Account"), "Account", ex("Business_Concept"))
	// hasName renamed; oldProp removed; newProp added.
	newer.AddProperty(Property{IRI: ex("hasName"), Label: "name"})
	newer.AddProperty(Property{IRI: ex("newProp"), Label: "new"})

	d := DiffOntologies(old, newer)
	if d.Empty() {
		t.Fatal("diff empty")
	}
	if len(d.ClassesAdded) != 2 { // Business_Concept, Account
		t.Errorf("added = %v", d.ClassesAdded)
	}
	if len(d.ClassesRemoved) != 1 || d.ClassesRemoved[0] != ex("Legacy") {
		t.Errorf("removed = %v", d.ClassesRemoved)
	}
	if len(d.SuperChanges) != 1 || d.SuperChanges[0].Class != ex("Customer") {
		t.Errorf("super changes = %+v", d.SuperChanges)
	}
	if len(d.PropertiesAdded) != 1 || len(d.PropertiesRemoved) != 1 {
		t.Errorf("props = +%v -%v", d.PropertiesAdded, d.PropertiesRemoved)
	}
	if len(d.LabelChanges) != 1 || d.LabelChanges[0].NewLabel != "name" {
		t.Errorf("labels = %+v", d.LabelChanges)
	}
	out := d.Format()
	for _, want := range []string{"classes added (2)", "classes removed (1)", "superclasses of Customer", `label of hasName: "has name" -> "name"`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDiffSuperOrderInsensitive(t *testing.T) {
	a := New("a")
	a.AddClass(ex("X"), "X")
	a.AddClass(ex("Y"), "Y")
	a.AddClass(ex("C"), "C", ex("X"), ex("Y"))
	b := New("b")
	b.AddClass(ex("X"), "X")
	b.AddClass(ex("Y"), "Y")
	b.AddClass(ex("C"), "C", ex("Y"), ex("X"))
	if d := DiffOntologies(a, b); !d.Empty() {
		t.Errorf("superclass order should not matter: %s", d.Format())
	}
}

func TestDiffRoundTripThroughTurtle(t *testing.T) {
	// An ontology and its Turtle round trip must diff as identical.
	o := DWH()
	back, err := FromTurtle("rt", o.Turtle())
	if err != nil {
		t.Fatal(err)
	}
	d := DiffOntologies(o, back)
	// Property characteristics like domains are preserved; labels too.
	if len(d.ClassesAdded) != 0 || len(d.ClassesRemoved) != 0 || len(d.SuperChanges) != 0 {
		t.Errorf("round trip diff: %s", d.Format())
	}
}
