package ntriples

import (
	"reflect"
	"testing"
)

var fuzzLines = []string{
	`<http://www.credit-suisse.com/dwh/mdm/instances#app1/db1> <http://www.credit-suisse.com/dwh/mdm/data_modeling#hasName> "DB1" .`,
	`<http://a> <http://b> <http://c> . # trailing comment`,
	`_:b1 <http://b> "esc\"aped\n"@en .`,
	`<http://a> <http://b> "42"^^<http://www.w3.org/2001/XMLSchema#int> .`,
	`# full-line comment`,
	`   `,
	`<http://a> <http://b> "unterminated`,
	`<http://a> <http://b> "x"^^missing .`,
	`"literal" <http://b> <http://c> .`,
	`<http://a> <http://b> <http://c> junk`,
	"<http://a> <http://b> \"tab\tand\\u0041unicode\" .",
	`_: <http://b> <http://c> .`,
}

// FuzzParseLine asserts that parsing never panics and that every
// successfully parsed statement survives a serialize→parse round trip
// unchanged.
func FuzzParseLine(f *testing.F) {
	for _, s := range fuzzLines {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, ok, err := ParseLine(line)
		if err != nil || !ok {
			return
		}
		nt := tr.NTriple()
		tr2, ok2, err2 := ParseLine(nt)
		if err2 != nil || !ok2 {
			t.Fatalf("round trip of %q failed: rendered %q, err=%v ok=%v", line, nt, err2, ok2)
		}
		if tr2 != tr {
			t.Fatalf("round trip changed triple:\n in: %#v\nout: %#v\nvia: %q", tr, tr2, nt)
		}
	})
}

// FuzzUnmarshal asserts the document reader never panics and that a
// parsed document re-marshals to an equivalent one.
func FuzzUnmarshal(f *testing.F) {
	f.Add("<http://a> <http://b> <http://c> .\n<http://a> <http://b> \"x\"@en .\n")
	for _, s := range fuzzLines {
		f.Add(s + "\n" + s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		ts, err := Unmarshal(doc)
		if err != nil {
			return
		}
		ts2, err := Unmarshal(Marshal(ts))
		if err != nil {
			t.Fatalf("re-parsing marshaled document failed: %v", err)
		}
		if !reflect.DeepEqual(ts, ts2) && !(len(ts) == 0 && len(ts2) == 0) {
			t.Fatalf("round trip changed triples:\n in: %v\nout: %v", ts, ts2)
		}
	})
}
