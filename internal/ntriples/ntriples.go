// Package ntriples reads and writes the N-Triples line format. The bulk
// load stage of the Figure 4 pipeline moves meta-data between the XML→RDF
// transform, the staging tables, and the RDF model tables in this format.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mdw/internal/rdf"
)

// Write serializes triples to w, one N-Triples statement per line.
func Write(w io.Writer, ts []rdf.Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := bw.WriteString(t.NTriple()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Marshal renders triples as one N-Triples document string.
func Marshal(ts []rdf.Triple) string {
	var b strings.Builder
	for _, t := range ts {
		b.WriteString(t.NTriple())
		b.WriteByte('\n')
	}
	return b.String()
}

// Read parses an N-Triples document from r. Blank lines and #-comments are
// skipped. Errors carry the 1-based line number.
func Read(r io.Reader) ([]rdf.Triple, error) {
	var out []rdf.Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		t, ok, err := ParseLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", line, err)
		}
		if ok {
			out = append(out, t)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ntriples: %w", err)
	}
	return out, nil
}

// Unmarshal parses an N-Triples document from a string.
func Unmarshal(doc string) ([]rdf.Triple, error) {
	return Read(strings.NewReader(doc))
}

// ParseLine parses a single N-Triples statement. ok is false for blank
// lines and comments.
func ParseLine(s string) (t rdf.Triple, ok bool, err error) {
	p := &parser{in: s}
	p.skipWS()
	if p.eof() || p.peek() == '#' {
		return rdf.Triple{}, false, nil
	}
	sub, err := p.term()
	if err != nil {
		return rdf.Triple{}, false, err
	}
	if sub.IsLiteral() {
		return rdf.Triple{}, false, fmt.Errorf("subject must not be a literal")
	}
	p.skipWS()
	pred, err := p.term()
	if err != nil {
		return rdf.Triple{}, false, err
	}
	if !pred.IsIRI() {
		return rdf.Triple{}, false, fmt.Errorf("predicate must be an IRI")
	}
	p.skipWS()
	obj, err := p.term()
	if err != nil {
		return rdf.Triple{}, false, err
	}
	p.skipWS()
	if p.eof() || p.peek() != '.' {
		return rdf.Triple{}, false, fmt.Errorf("expected terminating '.'")
	}
	p.pos++
	p.skipWS()
	if !p.eof() && p.peek() != '#' {
		return rdf.Triple{}, false, fmt.Errorf("trailing content after '.'")
	}
	return rdf.Triple{S: sub, P: pred, O: obj}, true, nil
}

type parser struct {
	in  string
	pos int
}

func (p *parser) eof() bool  { return p.pos >= len(p.in) }
func (p *parser) peek() byte { return p.in[p.pos] }
func (p *parser) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
		p.pos++
	}
}

func (p *parser) term() (rdf.Term, error) {
	if p.eof() {
		return rdf.Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return rdf.Term{}, fmt.Errorf("unexpected character %q", p.peek())
	}
}

func (p *parser) iri() (rdf.Term, error) {
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return rdf.Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.in[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if iri == "" {
		return rdf.Term{}, fmt.Errorf("empty IRI")
	}
	return rdf.IRI(iri), nil
}

func (p *parser) blank() (rdf.Term, error) {
	if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
		return rdf.Term{}, fmt.Errorf("malformed blank node")
	}
	start := p.pos + 2
	i := start
	for i < len(p.in) && !isTermEnd(p.in[i]) {
		i++
	}
	if i == start {
		return rdf.Term{}, fmt.Errorf("empty blank node label")
	}
	label := p.in[start:i]
	p.pos = i
	return rdf.Blank(label), nil
}

func isTermEnd(c byte) bool {
	return c == ' ' || c == '\t' || c == '.' || c == '<' || c == '"'
}

func (p *parser) literal() (rdf.Term, error) {
	// Scan to the closing unescaped quote.
	i := p.pos + 1
	for i < len(p.in) {
		if p.in[i] == '\\' {
			i += 2
			continue
		}
		if p.in[i] == '"' {
			break
		}
		i++
	}
	if i >= len(p.in) {
		return rdf.Term{}, fmt.Errorf("unterminated literal")
	}
	lex := rdf.UnescapeLiteral(p.in[p.pos+1 : i])
	p.pos = i + 1
	// Optional language tag or datatype.
	if !p.eof() && p.peek() == '@' {
		start := p.pos + 1
		j := start
		for j < len(p.in) && (isAlnum(p.in[j]) || p.in[j] == '-') {
			j++
		}
		if j == start {
			return rdf.Term{}, fmt.Errorf("empty language tag")
		}
		lang := p.in[start:j]
		p.pos = j
		return rdf.LangLiteral(lex, lang), nil
	}
	if p.pos+1 < len(p.in) && p.in[p.pos] == '^' && p.in[p.pos+1] == '^' {
		p.pos += 2
		if p.eof() || p.peek() != '<' {
			return rdf.Term{}, fmt.Errorf("expected datatype IRI after '^^'")
		}
		dt, err := p.iri()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.TypedLiteral(lex, dt.Value), nil
	}
	return rdf.Literal(lex), nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
