package ntriples

import (
	"strings"
	"testing"
	"testing/quick"

	"mdw/internal/rdf"
)

func TestRoundTrip(t *testing.T) {
	ts := []rdf.Triple{
		rdf.T(rdf.IRI("http://a/s"), rdf.IRI("http://a/p"), rdf.IRI("http://a/o")),
		rdf.T(rdf.IRI("http://a/s"), rdf.IRI("http://a/p"), rdf.Literal("plain value")),
		rdf.T(rdf.IRI("http://a/s"), rdf.IRI("http://a/p"), rdf.TypedLiteral("42", rdf.XSDInteger)),
		rdf.T(rdf.IRI("http://a/s"), rdf.IRI("http://a/p"), rdf.LangLiteral("Kunde", "de")),
		rdf.T(rdf.Blank("b1"), rdf.IRI("http://a/p"), rdf.Blank("b2")),
		rdf.T(rdf.IRI("http://a/s"), rdf.IRI("http://a/p"), rdf.Literal("with \"quotes\" and\nnewline")),
	}
	doc := Marshal(ts)
	got, err := Unmarshal(doc)
	if err != nil {
		t.Fatalf("Unmarshal: %v\ndoc:\n%s", err, doc)
	}
	if len(got) != len(ts) {
		t.Fatalf("got %d triples, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Errorf("triple %d: got %v, want %v", i, got[i], ts[i])
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	doc := `
# a comment
<http://a/s> <http://a/p> <http://a/o> .

<http://a/s> <http://a/p> "x" . # trailing comment
`
	ts, err := Unmarshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d triples", len(ts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://a/s> <http://a/p> <http://a/o>`, // no dot
		`<http://a/s> <http://a/p>`,              // short
		`"lit" <http://a/p> <http://a/o> .`,      // literal subject
		`<http://a/s> "lit" <http://a/o> .`,      // literal predicate
		`<http://a/s> _:b <http://a/o> .`,        // blank predicate
		`<http://a/s> <http://a/p> <http://a/o> . junk`,
		`<http://a/s> <http://a/p> "unterminated .`,
		`<> <http://a/p> <http://a/o> .`,       // empty IRI
		`<http://a/s> <http://a/p> "x"^^bad .`, // bad datatype
		`<http://a/s> <http://a/p> "x"@ .`,     // empty lang
		`_x <http://a/p> <http://a/o> .`,       // malformed blank
	}
	for _, doc := range bad {
		if _, err := Unmarshal(doc); err == nil {
			t.Errorf("expected error for %q", doc)
		}
	}
}

func TestWrite(t *testing.T) {
	var b strings.Builder
	ts := []rdf.Triple{rdf.T(rdf.IRI("http://a/s"), rdf.IRI("http://a/p"), rdf.Literal("v"))}
	if err := Write(&b, ts); err != nil {
		t.Fatal(err)
	}
	if b.String() != "<http://a/s> <http://a/p> \"v\" .\n" {
		t.Errorf("Write = %q", b.String())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(s, p, o string) bool {
		// IRIs must not contain '>' or whitespace; sanitize input into a
		// valid IRI body while keeping arbitrary literal content.
		clean := func(x string) string {
			r := strings.NewReplacer(">", "", "<", "", " ", "", "\t", "", "\n", "", "\r", "", "\x00", "")
			v := r.Replace(x)
			if v == "" {
				v = "x"
			}
			return v
		}
		ts := []rdf.Triple{rdf.T(rdf.IRI("http://a/"+clean(s)), rdf.IRI("http://a/"+clean(p)), rdf.Literal(o))}
		got, err := Unmarshal(Marshal(ts))
		if err != nil {
			return false
		}
		return len(got) == 1 && got[0] == ts[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
