package httpapi

import (
	"net/http"
	"strconv"
	"testing"

	"mdw/internal/obs"
)

// get issues a plain GET and returns the response (caller closes Body).
func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTraceHeaderAndSingleTrace is the end-to-end propagation test of
// the acceptance criterion: one HTTP search request (candidates via the
// SPARQL engine) yields ONE trace — http → search → sparql parse/exec —
// retrievable through GET /api/traces?id= with the X-Mdw-Trace value.
func TestTraceHeaderAndSingleTrace(t *testing.T) {
	srv := testServer(t)
	startedBefore := obs.DefaultTracer().Started()

	resp := get(t, srv.URL+"/api/search?term=customer&via=sparql")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	hdr := resp.Header.Get("X-Mdw-Trace")
	if hdr == "" {
		t.Fatal("no X-Mdw-Trace response header")
	}
	id, err := strconv.ParseUint(hdr, 10, 64)
	if err != nil || id == 0 {
		t.Fatalf("X-Mdw-Trace = %q, want a positive decimal trace ID", hdr)
	}

	// Exactly one trace started for the whole request: the services and
	// the query engine joined the HTTP root instead of starting their own.
	if started := obs.DefaultTracer().Started() - startedBefore; started != 1 {
		t.Errorf("request started %d traces, want 1", started)
	}

	var trace obs.Trace
	if code := getJSON(t, srv, "/api/traces?id="+hdr, &trace); code != 200 {
		t.Fatalf("traces?id status = %d", code)
	}
	if trace.ID != id || trace.Name != "http GET /api/search" {
		t.Fatalf("trace = id %d name %q", trace.ID, trace.Name)
	}

	// Verify the nesting chain http → search → … → sparql exec by
	// walking Parent links up from the exec span to the root.
	byID := map[uint64]obs.SpanData{}
	var root obs.SpanData
	for _, sp := range trace.Spans {
		byID[sp.ID] = sp
		if sp.Parent == 0 {
			root = sp
		}
	}
	if root.Name != "http GET /api/search" {
		t.Fatalf("root span = %q", root.Name)
	}
	names := map[string]bool{}
	for _, sp := range trace.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"search", "sparql parse", "sparql exec"} {
		if !names[want] {
			t.Errorf("trace lacks a %q span; spans: %v", want, names)
		}
	}
	for _, sp := range trace.Spans {
		if sp.Name != "sparql exec" {
			continue
		}
		sawSearch := false
		cur := sp
		for cur.Parent != 0 {
			cur = byID[cur.Parent]
			if cur.Name == "search" {
				sawSearch = true
			}
		}
		if !sawSearch {
			t.Errorf("sparql exec span not nested under the search span")
		}
		if cur.ID != root.ID {
			t.Errorf("sparql exec span does not chain up to the http root")
		}
	}

	// Unknown and malformed IDs.
	if code := getJSON(t, srv, "/api/traces?id=999999999", nil); code != 404 {
		t.Errorf("unknown trace id status = %d, want 404", code)
	}
	if code := getJSON(t, srv, "/api/traces?id=bogus", nil); code != 400 {
		t.Errorf("malformed trace id status = %d, want 400", code)
	}
}

func TestTracesLimitParam(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 3; i++ {
		get(t, srv.URL+"/healthz").Body.Close()
	}
	var all TracesResponse
	if code := getJSON(t, srv, "/api/traces", &all); code != 200 {
		t.Fatalf("traces status = %d", code)
	}
	if len(all.Traces) < 3 {
		t.Fatalf("ring has %d traces, want >= 3", len(all.Traces))
	}
	var limited TracesResponse
	if code := getJSON(t, srv, "/api/traces?n=2", &limited); code != 200 {
		t.Fatalf("traces?n status = %d", code)
	}
	if len(limited.Traces) != 2 {
		t.Fatalf("traces?n=2 returned %d traces", len(limited.Traces))
	}
	// Newest first: the limited list is the head of the full list shifted
	// by the /api/traces request in between; just check ordering.
	if len(limited.Traces) == 2 && limited.Traces[0].Start.Before(limited.Traces[1].Start) {
		t.Error("traces not newest-first")
	}
	if code := getJSON(t, srv, "/api/traces?n=0", &limited); code != 200 || len(limited.Traces) != 0 {
		t.Errorf("traces?n=0: code %d, %d traces", code, len(limited.Traces))
	}
}

func TestStatementsEndpoint(t *testing.T) {
	srv := testServer(t)
	// Two executions of the same query shape with different literals must
	// aggregate under one fingerprint.
	for _, term := range []string{"customer", "branch"} {
		resp := get(t, srv.URL+"/api/search?term="+term+"&via=sparql")
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("search %q status = %d", term, resp.StatusCode)
		}
	}
	var stmts StatementsResponse
	if code := getJSON(t, srv, "/api/statements", &stmts); code != 200 {
		t.Fatalf("statements status = %d", code)
	}
	if stmts.Statements == nil {
		t.Fatal("statements is null, want at least []")
	}
	var hit *obs.StatementStat
	for i := range stmts.Statements {
		st := &stmts.Statements[i]
		if st.Calls >= 2 && st.Fingerprint != "" && st.Query != "" &&
			st.Total > 0 && st.Mean > 0 && st.Max >= st.Min {
			hit = st
			break
		}
	}
	if hit == nil {
		t.Fatalf("no aggregated statement row with >= 2 calls; rows: %d", len(stmts.Statements))
	}
	if hit.LastPlan == "" {
		t.Error("aggregated row lacks a rendered plan")
	}

	var limited StatementsResponse
	if code := getJSON(t, srv, "/api/statements?n=1", &limited); code != 200 || len(limited.Statements) != 1 {
		t.Errorf("statements?n=1: code %d, %d rows", code, len(limited.Statements))
	}
}

// TestObserveMiddlewareMetrics exercises the timing middleware directly:
// requests aggregate by route pattern (including the "(unmatched)"
// fallback) and by status class. The registry is process-global, so the
// test asserts deltas, not absolute values.
func TestObserveMiddlewareMetrics(t *testing.T) {
	srv := testServer(t)
	reg := obs.Default()

	searchOK := reg.Counter("mdw_http_requests_total", "route", "GET /api/search", "class", "2xx")
	searchBad := reg.Counter("mdw_http_requests_total", "route", "GET /api/search", "class", "4xx")
	unmatched := reg.Counter("mdw_http_requests_total", "route", "(unmatched)", "class", "4xx")
	okBefore, badBefore, unmatchedBefore := searchOK.Value(), searchBad.Value(), unmatched.Value()
	_, histBefore := reg.Histogram("mdw_http_request_seconds", nil, "route", "GET /api/search").Buckets()
	countBefore := histBefore[len(histBefore)-1]

	for i := 0; i < 2; i++ {
		get(t, srv.URL+"/api/search?term=customer").Body.Close()
	}
	resp := get(t, srv.URL+"/api/search") // missing ?term → 400
	if resp.StatusCode != 400 {
		t.Fatalf("missing-term status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = get(t, srv.URL+"/no/such/route")
	if resp.StatusCode != 404 {
		t.Fatalf("unmatched route status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	if d := searchOK.Value() - okBefore; d != 2 {
		t.Errorf("2xx search counter delta = %d, want 2", d)
	}
	if d := searchBad.Value() - badBefore; d != 1 {
		t.Errorf("4xx search counter delta = %d, want 1", d)
	}
	if d := unmatched.Value() - unmatchedBefore; d != 1 {
		t.Errorf("(unmatched) 4xx counter delta = %d, want 1", d)
	}
	_, histAfter := reg.Histogram("mdw_http_request_seconds", nil, "route", "GET /api/search").Buckets()
	if d := histAfter[len(histAfter)-1] - countBefore; d != 3 {
		t.Errorf("search route histogram observation delta = %d, want 3 (2xx and 4xx alike)", d)
	}
}
