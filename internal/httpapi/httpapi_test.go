package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"mdw/internal/core"
	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/ontology"
	"mdw/internal/staging"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	w := core.New("")
	if _, err := w.LoadOntology(ontology.DWH()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		t.Fatal(err)
	}
	w.IntegrateDBpedia(dbpedia.Banking())
	if _, err := w.Snapshot("2009-R1", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(w))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	var res SearchResponse
	if code := getJSON(t, srv, "/api/search?term=customer", &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Instances == 0 || len(res.Groups) == 0 {
		t.Fatalf("res = %+v", res)
	}
	found := false
	for _, g := range res.Groups {
		if g.Label == "Attribute" && g.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no Attribute group: %+v", res.Groups)
	}
}

func TestSearchEndpointSemantic(t *testing.T) {
	srv := testServer(t)
	var plain, semantic SearchResponse
	getJSON(t, srv, "/api/search?term=client", &plain)
	getJSON(t, srv, "/api/search?term=client&semantic=true", &semantic)
	if semantic.Instances <= plain.Instances {
		t.Errorf("semantic %d <= plain %d", semantic.Instances, plain.Instances)
	}
}

func TestSearchEndpointClassFilter(t *testing.T) {
	srv := testServer(t)
	var res SearchResponse
	getJSON(t, srv, "/api/search?term=customer&class=Application1_Item,Interface_Item", &res)
	if res.Instances != 1 {
		t.Errorf("instances = %d, want 1", res.Instances)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	srv := testServer(t)
	if code := getJSON(t, srv, "/api/search", nil); code != 400 {
		t.Errorf("missing term: status = %d", code)
	}
}

func TestLineageEndpoint(t *testing.T) {
	srv := testServer(t)
	item := url.QueryEscape("application1/dwhdb/mart/v_customer/customer_id")
	var res LineageResponse
	if code := getJSON(t, srv, "/api/lineage?item="+item, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(res.Nodes) != 4 || len(res.Edges) != 3 {
		t.Fatalf("res = %+v", res)
	}
	if res.Direction != "backward" || res.Level != "attribute" {
		t.Errorf("dir/level = %s/%s", res.Direction, res.Level)
	}
	// Roll up to application level.
	getJSON(t, srv, "/api/lineage?item="+item+"&level=application", &res)
	if len(res.Nodes) != 2 || len(res.Edges) != 1 {
		t.Errorf("app level = %+v", res)
	}
	// Forward direction from the origin.
	origin := url.QueryEscape("pb_frontend/pbdb/clients/client_info/client_information_id")
	getJSON(t, srv, "/api/lineage?item="+origin+"&dir=forward", &res)
	if len(res.Nodes) != 4 {
		t.Errorf("forward = %+v", res)
	}
	// Rule filter.
	getJSON(t, srv, "/api/lineage?item="+item+"&rule=partner", &res)
	if len(res.Edges) != 1 {
		t.Errorf("rule filtered = %+v", res)
	}
}

func TestLineageEndpointErrors(t *testing.T) {
	srv := testServer(t)
	if code := getJSON(t, srv, "/api/lineage", nil); code != 400 {
		t.Errorf("missing item: %d", code)
	}
	if code := getJSON(t, srv, "/api/lineage?item=no/such/thing", nil); code != 404 {
		t.Errorf("unknown item: %d", code)
	}
	if code := getJSON(t, srv, "/api/lineage?item=x&dir=sideways", nil); code != 400 {
		t.Errorf("bad dir: %d", code)
	}
	item := url.QueryEscape("application1/dwhdb/mart/v_customer/customer_id")
	if code := getJSON(t, srv, "/api/lineage?item="+item+"&level=galaxy", nil); code != 400 {
		t.Errorf("bad level: %d", code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	q := url.QueryEscape(`PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
		SELECT ?name WHERE { ?x a dm:Attribute . ?x dm:hasName ?name }`)
	var res QueryResponse
	if code := getJSON(t, srv, "/api/query?q="+q, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Facts-only sees no inferred Attribute typings.
	getJSON(t, srv, "/api/query?facts=only&q="+q, &res)
	if len(res.Rows) != 0 {
		t.Errorf("facts-only rows = %d", len(res.Rows))
	}
	// ASK result shape.
	ask := url.QueryEscape(`ASK { ?s ?p ?o }`)
	getJSON(t, srv, "/api/query?q="+ask, &res)
	if res.Ask == nil || !*res.Ask {
		t.Errorf("ask = %+v", res)
	}
	if code := getJSON(t, srv, "/api/query?q=NOT+SPARQL", nil); code != 400 {
		t.Errorf("bad query: %d", code)
	}
	if code := getJSON(t, srv, "/api/query", nil); code != 400 {
		t.Errorf("missing q: %d", code)
	}
}

func TestStatsAndVersionsEndpoints(t *testing.T) {
	srv := testServer(t)
	var stats map[string]any
	if code := getJSON(t, srv, "/api/stats", &stats); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if stats["model"] != "DWH_CURR" {
		t.Errorf("stats = %v", stats)
	}
	var versions []map[string]any
	getJSON(t, srv, "/api/versions", &versions)
	if len(versions) != 1 || versions[0]["tag"] != "2009-R1" {
		t.Errorf("versions = %v", versions)
	}
}

func TestIndexAndHealth(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body[:n]), "Meta-data Warehouse") {
		t.Errorf("index page wrong: %d", resp.StatusCode)
	}
	if code := getJSON(t, srv, "/healthz", nil); code != 200 {
		t.Errorf("healthz = %d", code)
	}
}

func TestSemMatchEndpoint(t *testing.T) {
	srv := testServer(t)
	call := `SEM_MATCH(
		{?object rdf:type dm:Application1_View_Column .
		 ?object dm:hasName ?term},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#')),
		null)`
	resp, err := http.Post(srv.URL+"/api/semmatch", "text/plain", strings.NewReader(call))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || len(res.Rows) != 1 || res.Rows[0]["term"] != "customer_id" {
		t.Errorf("status %d, rows %v", resp.StatusCode, res.Rows)
	}
	// Bad call errors.
	bad, err := http.Post(srv.URL+"/api/semmatch", "text/plain", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Errorf("bad call status = %d", bad.StatusCode)
	}
}

func TestSearchEndpointTagFilter(t *testing.T) {
	srv := testServer(t)
	var res SearchResponse
	getJSON(t, srv, "/api/search?term=customer&tag=no_such_tag", &res)
	if res.Instances != 0 {
		t.Errorf("tag filter ignored: %d", res.Instances)
	}
}
