package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"mdw/internal/core"
	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/obs"
	"mdw/internal/ontology"
	"mdw/internal/staging"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	w := core.New("")
	if _, err := w.LoadOntology(ontology.DWH()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		t.Fatal(err)
	}
	w.IntegrateDBpedia(dbpedia.Banking())
	if _, err := w.Snapshot("2009-R1", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(w))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	var res SearchResponse
	if code := getJSON(t, srv, "/api/search?term=customer", &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Instances == 0 || len(res.Groups) == 0 {
		t.Fatalf("res = %+v", res)
	}
	found := false
	for _, g := range res.Groups {
		if g.Label == "Attribute" && g.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no Attribute group: %+v", res.Groups)
	}
}

func TestSearchEndpointSemantic(t *testing.T) {
	srv := testServer(t)
	var plain, semantic SearchResponse
	getJSON(t, srv, "/api/search?term=client", &plain)
	getJSON(t, srv, "/api/search?term=client&semantic=true", &semantic)
	if semantic.Instances <= plain.Instances {
		t.Errorf("semantic %d <= plain %d", semantic.Instances, plain.Instances)
	}
}

func TestSearchEndpointClassFilter(t *testing.T) {
	srv := testServer(t)
	var res SearchResponse
	getJSON(t, srv, "/api/search?term=customer&class=Application1_Item,Interface_Item", &res)
	if res.Instances != 1 {
		t.Errorf("instances = %d, want 1", res.Instances)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	srv := testServer(t)
	if code := getJSON(t, srv, "/api/search", nil); code != 400 {
		t.Errorf("missing term: status = %d", code)
	}
}

func TestLineageEndpoint(t *testing.T) {
	srv := testServer(t)
	item := url.QueryEscape("application1/dwhdb/mart/v_customer/customer_id")
	var res LineageResponse
	if code := getJSON(t, srv, "/api/lineage?item="+item, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(res.Nodes) != 4 || len(res.Edges) != 3 {
		t.Fatalf("res = %+v", res)
	}
	if res.Direction != "backward" || res.Level != "attribute" {
		t.Errorf("dir/level = %s/%s", res.Direction, res.Level)
	}
	// Roll up to application level.
	getJSON(t, srv, "/api/lineage?item="+item+"&level=application", &res)
	if len(res.Nodes) != 2 || len(res.Edges) != 1 {
		t.Errorf("app level = %+v", res)
	}
	// Forward direction from the origin.
	origin := url.QueryEscape("pb_frontend/pbdb/clients/client_info/client_information_id")
	getJSON(t, srv, "/api/lineage?item="+origin+"&dir=forward", &res)
	if len(res.Nodes) != 4 {
		t.Errorf("forward = %+v", res)
	}
	// Rule filter.
	getJSON(t, srv, "/api/lineage?item="+item+"&rule=partner", &res)
	if len(res.Edges) != 1 {
		t.Errorf("rule filtered = %+v", res)
	}
}

func TestLineageEndpointErrors(t *testing.T) {
	srv := testServer(t)
	if code := getJSON(t, srv, "/api/lineage", nil); code != 400 {
		t.Errorf("missing item: %d", code)
	}
	if code := getJSON(t, srv, "/api/lineage?item=no/such/thing", nil); code != 404 {
		t.Errorf("unknown item: %d", code)
	}
	if code := getJSON(t, srv, "/api/lineage?item=x&dir=sideways", nil); code != 400 {
		t.Errorf("bad dir: %d", code)
	}
	item := url.QueryEscape("application1/dwhdb/mart/v_customer/customer_id")
	if code := getJSON(t, srv, "/api/lineage?item="+item+"&level=galaxy", nil); code != 400 {
		t.Errorf("bad level: %d", code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	q := url.QueryEscape(`PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
		SELECT ?name WHERE { ?x a dm:Attribute . ?x dm:hasName ?name }`)
	var res QueryResponse
	if code := getJSON(t, srv, "/api/query?q="+q, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Facts-only sees no inferred Attribute typings.
	getJSON(t, srv, "/api/query?facts=only&q="+q, &res)
	if len(res.Rows) != 0 {
		t.Errorf("facts-only rows = %d", len(res.Rows))
	}
	// ASK result shape.
	ask := url.QueryEscape(`ASK { ?s ?p ?o }`)
	getJSON(t, srv, "/api/query?q="+ask, &res)
	if res.Ask == nil || !*res.Ask {
		t.Errorf("ask = %+v", res)
	}
	if code := getJSON(t, srv, "/api/query?q=NOT+SPARQL", nil); code != 400 {
		t.Errorf("bad query: %d", code)
	}
	if code := getJSON(t, srv, "/api/query", nil); code != 400 {
		t.Errorf("missing q: %d", code)
	}
}

func TestStatsAndVersionsEndpoints(t *testing.T) {
	srv := testServer(t)
	var stats map[string]any
	if code := getJSON(t, srv, "/api/stats", &stats); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if stats["model"] != "DWH_CURR" {
		t.Errorf("stats = %v", stats)
	}
	var versions []map[string]any
	getJSON(t, srv, "/api/versions", &versions)
	if len(versions) != 1 || versions[0]["tag"] != "2009-R1" {
		t.Errorf("versions = %v", versions)
	}
}

func TestIndexAndHealth(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body[:n]), "Meta-data Warehouse") {
		t.Errorf("index page wrong: %d", resp.StatusCode)
	}
	if code := getJSON(t, srv, "/healthz", nil); code != 200 {
		t.Errorf("healthz = %d", code)
	}
}

func TestSemMatchEndpoint(t *testing.T) {
	srv := testServer(t)
	call := `SEM_MATCH(
		{?object rdf:type dm:Application1_View_Column .
		 ?object dm:hasName ?term},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#')),
		null)`
	resp, err := http.Post(srv.URL+"/api/semmatch", "text/plain", strings.NewReader(call))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || len(res.Rows) != 1 || res.Rows[0]["term"] != "customer_id" {
		t.Errorf("status %d, rows %v", resp.StatusCode, res.Rows)
	}
	// Bad call errors.
	bad, err := http.Post(srv.URL+"/api/semmatch", "text/plain", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Errorf("bad call status = %d", bad.StatusCode)
	}
}

func TestSearchEndpointTagFilter(t *testing.T) {
	srv := testServer(t)
	var res SearchResponse
	getJSON(t, srv, "/api/search?term=customer&tag=no_such_tag", &res)
	if res.Instances != 0 {
		t.Errorf("tag filter ignored: %d", res.Instances)
	}
}

// TestLineageBadLevelValidatedUpFront is the regression test for the
// late-validation bug: handleLineage used to run the full Trace before
// looking at ?level, so a request with an unknown item AND a bad level
// answered 404 (from the wasted traversal) instead of 400. Parameters
// must be validated before any work runs.
func TestLineageBadLevelValidatedUpFront(t *testing.T) {
	srv := testServer(t)
	if code := getJSON(t, srv, "/api/lineage?item=no/such/thing&level=galaxy", nil); code != 400 {
		t.Errorf("bad level on unknown item: status = %d, want 400 (level must be validated before the trace runs)", code)
	}
	if code := getJSON(t, srv, "/api/lineage?item=no/such/thing&dir=sideways&level=galaxy", nil); code != 400 {
		t.Errorf("bad dir+level on unknown item: status = %d, want 400", code)
	}
}

// TestVersionsEmptyIsArray is the regression test for the JSON-null bug:
// /api/versions on a warehouse with no snapshots must serve [], not null.
func TestVersionsEmptyIsArray(t *testing.T) {
	w := core.New("")
	if _, err := w.LoadOntology(ontology.DWH()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(w))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/versions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimSpace(string(body))
	if trimmed != "[]" {
		t.Fatalf("empty versions body = %q, want []", trimmed)
	}
}

func TestVersionsMarkPruned(t *testing.T) {
	srv := testServer(t)
	var out []struct {
		Number int  `json:"number"`
		Pruned bool `json:"pruned"`
	}
	if code := getJSON(t, srv, "/api/versions", &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(out) != 1 || out[0].Pruned {
		t.Fatalf("versions = %+v, want one live version", out)
	}
}

// TestMetricsEndpoint asserts /api/metrics serves Prometheus text
// exposition covering every instrumented subsystem, and that it reflects
// a request made just before.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	// Drive each subsystem once so the counters move.
	getJSON(t, srv, "/api/search?term=customer", nil)
	item := url.QueryEscape("application1/dwhdb/mart/v_customer/customer_id")
	getJSON(t, srv, "/api/lineage?item="+item, nil)
	q := url.QueryEscape(`PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
		SELECT ?n WHERE { ?x a dm:Attribute . ?x dm:hasName ?n }`)
	getJSON(t, srv, "/api/query?q="+q, nil)

	resp, err := http.Get(srv.URL + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"mdw_store_adds_total",
		"mdw_store_lookups_total",
		"mdw_sparql_exec_seconds_count",
		"mdw_sparql_plancache_total",
		"mdw_search_seconds_count",
		"mdw_lineage_trace_seconds_count",
		"mdw_http_requests_total",
		"mdw_http_request_seconds_bucket",
		"# TYPE mdw_store_adds_total counter",
		"# TYPE mdw_http_request_seconds histogram",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
	// The request made above must be reflected with route and status
	// class labels (counters are process-global, so assert presence, not
	// an exact count).
	if !strings.Contains(text, `mdw_http_requests_total{class="2xx",route="GET /api/search"}`) {
		t.Error("exposition does not reflect the /api/search request just made")
	}
}

// TestSlowQueryLogCapturesPlan sets the slow-query threshold to zero so
// every query is logged, runs one through the HTTP API, and asserts the
// log entry carries the query text and its rendered plan (the
// acceptance-criteria shape), served via /api/traces.
func TestSlowQueryLogCapturesPlan(t *testing.T) {
	sl := obs.DefaultSlowLog()
	old := sl.Threshold()
	sl.SetThreshold(0)
	defer sl.SetThreshold(old)

	srv := testServer(t)
	q := url.QueryEscape(`PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
		SELECT ?n WHERE { ?x a dm:Attribute . ?x dm:hasName ?n }`)
	if code := getJSON(t, srv, "/api/query?q="+q, nil); code != 200 {
		t.Fatalf("query status = %d", code)
	}

	var tr TracesResponse
	if code := getJSON(t, srv, "/api/traces", &tr); code != 200 {
		t.Fatalf("traces status = %d", code)
	}
	var entry *obs.SlowQuery
	for i := range tr.SlowLog {
		if strings.Contains(tr.SlowLog[i].Query, "dm:hasName") {
			entry = &tr.SlowLog[i]
			break
		}
	}
	if entry == nil {
		t.Fatalf("query not in slow log (entries: %d)", len(tr.SlowLog))
	}
	if !strings.Contains(entry.Plan, "SELECT") {
		t.Errorf("slow-log entry lacks a rendered plan: %q", entry.Plan)
	}
	if entry.Rows == 0 {
		t.Error("slow-log entry has zero rows")
	}
	hasExec := false
	for _, st := range entry.Stages {
		if st.Name == "exec" {
			hasExec = true
		}
	}
	if !hasExec {
		t.Errorf("slow-log entry lacks an exec stage: %+v", entry.Stages)
	}
	// The HTTP middleware roots the trace; the warehouse query nests
	// inside it as a child span rather than starting its own trace.
	if len(tr.Traces) == 0 {
		t.Fatal("trace ring empty after requests")
	}
	found := false
	for _, trace := range tr.Traces {
		if trace.Name != "http GET /api/query" {
			continue
		}
		for _, sp := range trace.Spans {
			if sp.Name == "warehouse.query" && sp.Parent != 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no http GET /api/query trace with a nested warehouse.query span in the ring")
	}
}

func TestCloneEndpoint(t *testing.T) {
	srv := testServer(t)
	post := func(path string, out any) int {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	if code := post("/api/clone", nil); code != 400 {
		t.Errorf("missing dst: status = %d, want 400", code)
	}
	var res CloneResponse
	if code := post("/api/clone?dst=SANDBOX", &res); code != 200 {
		t.Fatalf("clone: status = %d", code)
	}
	if res.Src != core.DefaultModel || res.Dst != "SANDBOX" || res.Triples == 0 {
		t.Fatalf("clone response = %+v", res)
	}
	// The destination name is now taken.
	if code := post("/api/clone?dst=SANDBOX", nil); code != 409 {
		t.Errorf("duplicate dst: status = %d, want 409", code)
	}
	// An unknown source model is a conflict too, not a 500.
	if code := post("/api/clone?src=nope&dst=OTHER", nil); code != 409 {
		t.Errorf("unknown src: status = %d, want 409", code)
	}
	// A clone of the clone goes through ?src.
	if code := post("/api/clone?src=SANDBOX&dst=SANDBOX2", &res); code != 200 || res.Src != "SANDBOX" {
		t.Errorf("chained clone: status = %d, res = %+v", code, res)
	}
}

func TestLoadEndpointInvalidatesCache(t *testing.T) {
	srv := testServer(t)
	postBody := func(path, body string, out any) int {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/n-triples", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	if code := postBody("/api/load", "", nil); code != 400 {
		t.Errorf("empty body: status = %d, want 400", code)
	}
	if code := postBody("/api/load", "not ntriples", nil); code != 400 {
		t.Errorf("garbage body: status = %d, want 400", code)
	}
	var res struct {
		Parsed int `json:"parsed"`
		Added  int `json:"added"`
	}
	nt := "<http://x/s> <http://x/p> <http://x/o> .\n<http://x/s> <http://x/p> <http://x/o> .\n"
	if code := postBody("/api/load", nt, &res); code != 200 {
		t.Fatalf("load: status = %d", code)
	}
	if res.Parsed != 2 || res.Added != 1 {
		t.Errorf("load response = %+v, want parsed=2 added=1 (duplicate dropped)", res)
	}
}
