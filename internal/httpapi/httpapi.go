// Package httpapi exposes the meta-data warehouse services over HTTP —
// the role of the web frontend whose screenshots are Figures 6 and 7 of
// the paper. The JSON API mirrors the two use cases (search and
// lineage/provenance) plus direct SPARQL access and the statistics
// reports; GET / serves a minimal single-page frontend.
package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"mdw/internal/core"
	"mdw/internal/durable"
	"mdw/internal/lineage"
	"mdw/internal/ntriples"
	"mdw/internal/rdf"
	"mdw/internal/search"
	"mdw/internal/sparql"
	"mdw/internal/staging"
)

// Server wraps a warehouse with HTTP handlers.
type Server struct {
	w   *core.Warehouse
	mux *http.ServeMux
	// mgr is the durability manager when the server runs with a data
	// directory; nil otherwise (POST /api/checkpoint then answers 503).
	mgr *durable.Manager
	// readiness gates GET /readyz. nil means always ready (embedded and
	// test servers); mdwd installs a probe that flips once recovery and
	// index builds finish. Set before serving; the probe itself must be
	// safe for concurrent calls.
	readiness func() (bool, string)
}

// NewServer returns a server for the given warehouse.
func NewServer(w *core.Warehouse) *Server {
	s := &Server{w: w, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/lineage", s.handleLineage)
	s.mux.HandleFunc("GET /api/audit", s.handleAudit)
	s.mux.HandleFunc("GET /api/query", s.handleQuery)
	s.mux.HandleFunc("POST /api/semmatch", s.handleSemMatch)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/versions", s.handleVersions)
	s.mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/traces", s.handleTraces)
	s.mux.HandleFunc("GET /api/statements", s.handleStatements)
	s.mux.HandleFunc("GET /api/misestimates", s.handleMisestimates)
	s.mux.HandleFunc("POST /api/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /api/clone", s.handleClone)
	s.mux.HandleFunc("POST /api/load", s.handleLoad)
	// Liveness: the process is up and serving. Always 200 — a wedged
	// recovery is a readiness problem, not a liveness one.
	s.mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// ServeHTTP implements http.Handler. Every request passes through the
// observe middleware, which times it and feeds the per-route metrics.
func (s *Server) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	s.observe(rw, r)
}

// SetDurable attaches the durability manager backing the warehouse, which
// enables POST /api/checkpoint.
func (s *Server) SetDurable(mgr *durable.Manager) { s.mgr = mgr }

// SetReadiness installs the probe behind GET /readyz: not-ready answers
// 503 with the probe's reason, ready answers 200. Call before serving;
// the probe runs on request goroutines and must be concurrency-safe
// (mdwd's reads an atomic flag flipped when startup work completes).
func (s *Server) SetReadiness(probe func() (bool, string)) { s.readiness = probe }

// handleReadyz serves the readiness probe: 200 once the warehouse can
// answer queries (durable recovery replayed, entailment and text indexes
// built), 503 with the blocking stage before that. Load balancers and
// orchestration hold traffic until the flip; /healthz stays 200 all the
// while.
func (s *Server) handleReadyz(rw http.ResponseWriter, _ *http.Request) {
	if s.readiness != nil {
		if ok, reason := s.readiness(); !ok {
			rw.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(rw, "not ready: "+reason)
			return
		}
	}
	rw.WriteHeader(http.StatusOK)
	fmt.Fprintln(rw, "ready")
}

// handleCheckpoint forces a checkpoint: a consistent snapshot of the
// whole store is written and the WAL segments it covers are removed. The
// response is the checkpoint's CheckpointStats.
func (s *Server) handleCheckpoint(rw http.ResponseWriter, r *http.Request) {
	if s.mgr == nil {
		writeError(rw, http.StatusServiceUnavailable, fmt.Errorf("durability not enabled (start mdwd with -data-dir)"))
		return
	}
	stats, err := s.mgr.Checkpoint()
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err)
		return
	}
	writeJSON(rw, http.StatusOK, stats)
}

// CloneResponse is the JSON shape of a completed model clone.
type CloneResponse struct {
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	Triples int    `json:"triples"`
}

// handleClone clones a model (?src, defaulting to the base model) into
// ?dst through the store's copy-on-write path. The clone starts at a
// fresh generation, so results cached for the source never leak into
// queries over the clone, and vice versa.
func (s *Server) handleClone(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	dst := q.Get("dst")
	if dst == "" {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("missing ?dst"))
		return
	}
	n, err := s.w.CloneModel(q.Get("src"), dst)
	if err != nil {
		writeError(rw, http.StatusConflict, err)
		return
	}
	src := q.Get("src")
	if src == "" {
		src = s.w.Model()
	}
	writeJSON(rw, http.StatusOK, CloneResponse{Src: src, Dst: dst, Triples: n})
}

// handleLoad adds raw triples to the base model, posted as N-Triples
// text (the auxiliary-triples path of `mdw generate`). The write bumps
// the model generation, so cached query results and the entailment
// index are invalidated implicitly.
func (s *Server) handleLoad(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, 16<<20))
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	ts, err := ntriples.Unmarshal(string(body))
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	if len(ts) == 0 {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("no triples in request body"))
		return
	}
	added := s.w.LoadTriples(ts)
	writeJSON(rw, http.StatusOK, map[string]int{"parsed": len(ts), "added": added})
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(rw http.ResponseWriter, status int, err error) {
	writeJSON(rw, status, map[string]string{"error": err.Error()})
}

// --- search ---

// SearchHit is the JSON shape of one search hit.
type SearchHit struct {
	IRI     string `json:"iri"`
	Name    string `json:"name"`
	Matched string `json:"matched"`
}

// SearchGroup is one class bucket of the Figure 6 result list.
type SearchGroup struct {
	Class string      `json:"class"`
	Label string      `json:"label"`
	Count int         `json:"count"`
	Hits  []SearchHit `json:"hits,omitempty"`
}

// SearchResponse is the JSON shape of a search result.
type SearchResponse struct {
	Term      string        `json:"term"`
	Expanded  []string      `json:"expanded"`
	Instances int           `json:"instances"`
	Groups    []SearchGroup `json:"groups"`
}

func (s *Server) handleSearch(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	term := q.Get("term")
	if term == "" {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("missing ?term"))
		return
	}
	opt := search.Options{
		Area:              q.Get("area"),
		Layer:             q.Get("layer"),
		Tag:               q.Get("tag"),
		Semantic:          q.Get("semantic") == "true" || q.Get("semantic") == "1",
		MatchDescriptions: q.Get("desc") == "true" || q.Get("desc") == "1",
		MaxHitsPerGroup:   10,
	}
	if n, err := strconv.Atoi(q.Get("hits")); err == nil && n >= 0 {
		opt.MaxHitsPerGroup = n
	}
	// ?via=sparql routes candidate matching through the SPARQL engine —
	// same results, but the request's trace shows the full http → search
	// → sparql nesting and the queries land in /api/statements.
	switch q.Get("via") {
	case "", "index":
	case "sparql":
		opt.ViaSPARQL = true
	case "scan":
		opt.ForceScan = true
	default:
		writeError(rw, http.StatusBadRequest, fmt.Errorf("bad ?via (want index, sparql, or scan)"))
		return
	}
	for _, c := range strings.Split(q.Get("class"), ",") {
		if c = strings.TrimSpace(c); c != "" {
			if !strings.Contains(c, "://") {
				c = rdf.DMNS + c
			}
			opt.FilterClasses = append(opt.FilterClasses, c)
		}
	}
	res, err := s.w.SearchCtx(r.Context(), term, opt)
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err)
		return
	}
	resp := SearchResponse{
		Term:      res.Term,
		Expanded:  res.Expanded,
		Instances: res.Instances,
	}
	for _, g := range res.Groups {
		sg := SearchGroup{Class: g.Class.Value, Label: g.Label, Count: g.Count}
		for _, h := range g.Hits {
			sg.Hits = append(sg.Hits, SearchHit{IRI: h.IRI.Value, Name: h.Name, Matched: h.Matched})
		}
		resp.Groups = append(resp.Groups, sg)
	}
	writeJSON(rw, http.StatusOK, resp)
}

// --- lineage ---

// LineageNode is the JSON shape of one lineage node.
type LineageNode struct {
	IRI     string   `json:"iri"`
	Name    string   `json:"name"`
	Depth   int      `json:"depth"`
	Classes []string `json:"classes,omitempty"`
}

// LineageEdge is one mapping hop.
type LineageEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Rule string `json:"rule,omitempty"`
}

// LineageResponse is the JSON shape of a lineage graph.
type LineageResponse struct {
	Root      string        `json:"root"`
	Direction string        `json:"direction"`
	Level     string        `json:"level"`
	Nodes     []LineageNode `json:"nodes"`
	Edges     []LineageEdge `json:"edges"`
}

func (s *Server) handleLineage(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	itemPath := q.Get("item")
	if itemPath == "" {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("missing ?item (slash-separated path or full IRI)"))
		return
	}
	var item rdf.Term
	if strings.Contains(itemPath, "://") {
		item = rdf.IRI(itemPath)
	} else {
		item = staging.InstanceIRI(strings.Split(itemPath, "/")...)
	}
	// Validate every parameter before running the traversal: a bad
	// ?level must cost a 400, not a full lineage trace plus a 400.
	dir := lineage.Backward
	switch q.Get("dir") {
	case "", "backward":
	case "forward":
		dir = lineage.Forward
	default:
		writeError(rw, http.StatusBadRequest, fmt.Errorf("bad ?dir (want backward or forward)"))
		return
	}
	level := lineage.LevelAttribute
	switch q.Get("level") {
	case "", "attribute":
	case "relation":
		level = lineage.LevelRelation
	case "schema":
		level = lineage.LevelSchema
	case "application":
		level = lineage.LevelApplication
	default:
		writeError(rw, http.StatusBadRequest, fmt.Errorf("bad ?level (want attribute, relation, schema, or application)"))
		return
	}
	opt := lineage.Options{}
	if n, err := strconv.Atoi(q.Get("depth")); err == nil && n > 0 {
		opt.MaxDepth = n
	}
	if rule := q.Get("rule"); rule != "" {
		opt.RuleFilter = func(r string) bool { return strings.Contains(r, rule) }
	}
	svc := s.w.LineageService()
	g, err := svc.TraceCtx(r.Context(), item, dir, opt)
	if err != nil {
		writeError(rw, http.StatusNotFound, err)
		return
	}
	if g, err = svc.RollupCtx(r.Context(), g, level); err != nil {
		writeError(rw, http.StatusInternalServerError, err)
		return
	}
	resp := LineageResponse{
		Root:      g.Root.Value,
		Direction: g.Direction.String(),
		Level:     level.String(),
	}
	for _, n := range g.Nodes {
		node := LineageNode{IRI: n.IRI.Value, Name: n.Name, Depth: n.Depth}
		for _, c := range n.Classes {
			node.Classes = append(node.Classes, rdf.LocalName(c))
		}
		resp.Nodes = append(resp.Nodes, node)
	}
	for _, e := range g.Edges {
		resp.Edges = append(resp.Edges, LineageEdge{From: e.From.Value, To: e.To.Value, Rule: e.Rule})
	}
	writeJSON(rw, http.StatusOK, resp)
}

// --- audit ---

// AuditGrant is one access relationship in the JSON report.
type AuditGrant struct {
	User      string `json:"user"`
	Role      string `json:"role"`
	RoleClass string `json:"roleClass,omitempty"`
	App       string `json:"app"`
	Via       string `json:"via"`
}

// AuditResponse is the JSON shape of an access audit.
type AuditResponse struct {
	Item   string       `json:"item"`
	Apps   []string     `json:"apps"`
	Users  []string     `json:"users"`
	Grants []AuditGrant `json:"grants"`
}

func (s *Server) handleAudit(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	itemPath := q.Get("item")
	if itemPath == "" {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("missing ?item"))
		return
	}
	var item rdf.Term
	if strings.Contains(itemPath, "://") {
		item = rdf.IRI(itemPath)
	} else {
		item = staging.InstanceIRI(strings.Split(itemPath, "/")...)
	}
	withLineage := q.Get("lineage") != "false"
	rep, err := s.w.Audit(item, withLineage)
	if err != nil {
		writeError(rw, http.StatusNotFound, err)
		return
	}
	resp := AuditResponse{Item: rep.Item.Value, Users: rep.Users()}
	for _, a := range rep.Apps {
		resp.Apps = append(resp.Apps, a.Value)
	}
	for _, g := range rep.Grants {
		resp.Grants = append(resp.Grants, AuditGrant{
			User: g.UserName, Role: g.RoleName, RoleClass: g.RoleClass,
			App: g.AppName, Via: g.Via,
		})
	}
	writeJSON(rw, http.StatusOK, resp)
}

// --- query ---

// QueryResponse is the JSON shape of a SPARQL result.
type QueryResponse struct {
	Vars []string            `json:"vars"`
	Rows []map[string]string `json:"rows"`
	Ask  *bool               `json:"ask,omitempty"`
	// Triples carries CONSTRUCT results in N-Triples syntax.
	Triples []string `json:"triples,omitempty"`
	// Stats and AnalyzedPlan are present with ?analyze=1: the operator
	// stats tree of the execution that produced this result, and its
	// EXPLAIN ANALYZE rendering.
	Stats        *sparql.ExecStats `json:"stats,omitempty"`
	AnalyzedPlan string            `json:"analyzedPlan,omitempty"`
}

// wantAnalyze reports whether the request opted into EXPLAIN ANALYZE.
func wantAnalyze(r *http.Request) bool {
	v := r.URL.Query().Get("analyze")
	return v == "1" || v == "true"
}

func (s *Server) handleQuery(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("missing ?q"))
		return
	}
	factsOnly := r.URL.Query().Get("facts") == "only"
	var res *sparql.Result
	var stats *sparql.ExecStats
	var err error
	switch {
	case wantAnalyze(r) && factsOnly:
		res, stats, err = s.w.QueryFactsAnalyzeCtx(r.Context(), q)
	case wantAnalyze(r):
		res, stats, err = s.w.QueryAnalyzeCtx(r.Context(), q)
	case factsOnly:
		res, err = s.w.QueryFactsCtx(r.Context(), q)
	default:
		res, err = s.w.QueryCtx(r.Context(), q)
	}
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	resp := QueryResponse{Vars: res.Vars}
	if stats != nil {
		resp.Stats = stats
		resp.AnalyzedPlan = stats.String()
	}
	if len(res.Triples) > 0 {
		for _, tr := range res.Triples {
			resp.Triples = append(resp.Triples, tr.NTriple())
		}
	} else if len(res.Vars) == 0 && len(res.Rows) == 0 {
		ask := res.Ask
		resp.Ask = &ask
	}
	for _, b := range res.Rows {
		row := map[string]string{}
		for v, t := range b {
			row[v] = t.Value
		}
		resp.Rows = append(resp.Rows, row)
	}
	writeJSON(rw, http.StatusOK, resp)
}

// handleSemMatch executes an Oracle-style SEM_MATCH call posted as the
// request body (text/plain).
func (s *Server) handleSemMatch(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	var res *sparql.Result
	var stats *sparql.ExecStats
	if wantAnalyze(r) {
		res, stats, err = s.w.SemMatchAnalyzeCtx(r.Context(), string(body))
	} else {
		res, err = s.w.SemMatchCtx(r.Context(), string(body))
	}
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	resp := QueryResponse{Vars: res.Vars}
	if stats != nil {
		resp.Stats = stats
		resp.AnalyzedPlan = stats.String()
	}
	for _, b := range res.Rows {
		row := map[string]string{}
		for v, t := range b {
			row[v] = t.Value
		}
		resp.Rows = append(resp.Rows, row)
	}
	writeJSON(rw, http.StatusOK, resp)
}

// --- stats / versions ---

func (s *Server) handleStats(rw http.ResponseWriter, _ *http.Request) {
	st := s.w.Stats()
	writeJSON(rw, http.StatusOK, map[string]any{
		"model":    st.Model,
		"triples":  st.Triples,
		"derived":  st.Derived,
		"nodes":    st.Nodes,
		"versions": st.Versions,
		// Index health: whether the OWLPRIME entailment matches the base
		// model, and the cached full-text indexes powering /api/search.
		"indexCurrent": st.IndexCurrent,
		"textIndexes":  st.TextIndex,
	})
}

func (s *Server) handleVersions(rw http.ResponseWriter, _ *http.Request) {
	type ver struct {
		Number  int    `json:"number"`
		Tag     string `json:"tag"`
		At      string `json:"at"`
		Triples int    `json:"triples"`
		Pruned  bool   `json:"pruned,omitempty"`
	}
	// Initialized non-nil so an empty history marshals as [], not null.
	out := []ver{}
	for _, v := range s.w.History().Versions() {
		out = append(out, ver{Number: v.Number, Tag: v.Tag, At: v.At.Format("2006-01-02"), Triples: v.Triples, Pruned: v.Pruned})
	}
	writeJSON(rw, http.StatusOK, out)
}

func (s *Server) handleIndex(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = rw.Write([]byte(indexHTML))
}
