package httpapi

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"mdw/internal/obs"
	"mdw/internal/sparql"
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_http_requests_total", "HTTP requests by route pattern and status class.")
	r.SetHelp("mdw_http_request_seconds", "HTTP request latency by route pattern.")
}

// statusRecorder captures the status code a handler writes so the
// middleware can attribute the request to a status class.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// statusClass buckets a status code into "2xx"/"3xx"/"4xx"/"5xx" without
// allocating for the common cases.
func statusClass(code int) string {
	switch {
	case code >= 200 && code < 300:
		return "2xx"
	case code >= 300 && code < 400:
		return "3xx"
	case code >= 400 && code < 500:
		return "4xx"
	case code >= 500:
		return "5xx"
	}
	return strconv.Itoa(code)
}

// observe is the timing middleware every request passes through: it
// resolves the registered route pattern (so metrics aggregate by route,
// not by raw URL), times the handler, and records a per-route latency
// histogram plus a per-route, per-status-class request counter. Metric
// handles are looked up per request, but the registry's lookup is one
// RLock'd map probe on the steady state — routes and status classes are
// a small closed set.
//
// It also roots the request's trace: the "http <route>" span travels
// down through r.Context(), so every service and engine span of the
// request nests under one trace, and the trace's ID is returned in the
// X-Mdw-Trace response header — curl it back via GET /api/traces?id=.
func (s *Server) observe(rw http.ResponseWriter, r *http.Request) {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "(unmatched)"
	}
	sr := &statusRecorder{ResponseWriter: rw}
	sp := obs.StartSpan("http " + pattern)
	rw.Header().Set("X-Mdw-Trace", strconv.FormatUint(sp.TraceID(), 10))
	r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
	t0 := time.Now()
	s.mux.ServeHTTP(sr, r)
	d := time.Since(t0)
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	class := statusClass(sr.status)
	sp.SetLabel("status", strconv.Itoa(sr.status)).Finish()
	reg := obs.Default()
	reg.Histogram("mdw_http_request_seconds", nil, "route", pattern).Observe(d)
	reg.Counter("mdw_http_requests_total", "route", pattern, "class", class).Inc()
}

// MountPprof registers the net/http/pprof profiling handlers under
// /debug/pprof/ on the server's mux. Off by default — mdwd enables it
// behind the -pprof flag, since profile endpoints expose internals and
// can be expensive to serve.
func (s *Server) MountPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// handleMetrics serves the default registry in the Prometheus text
// exposition format (version 0.0.4).
func (s *Server) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(rw)
}

// TracesResponse is the JSON shape of GET /api/traces.
type TracesResponse struct {
	Started int64           `json:"started"`
	Traces  []obs.Trace     `json:"traces"`
	SlowLog []obs.SlowQuery `json:"slowQueries"`
}

// handleTraces serves the recent-trace ring and the slow-query log.
// ?id=<trace id> (the X-Mdw-Trace value) returns that single trace, 404
// when it never existed or has aged out of the ring; ?n= limits the
// number of traces listed, newest first.
func (s *Server) handleTraces(rw http.ResponseWriter, r *http.Request) {
	tr := obs.DefaultTracer()
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("bad ?id %q", idStr))
			return
		}
		t, ok := tr.Get(id)
		if !ok {
			writeError(rw, http.StatusNotFound, fmt.Errorf("trace %d not found (unfinished, or evicted from the %d-trace ring)", id, obs.DefaultTraceCapacity))
			return
		}
		writeJSON(rw, http.StatusOK, t)
		return
	}
	resp := TracesResponse{
		Started: tr.Started(),
		Traces:  tr.Recent(),
		SlowLog: obs.DefaultSlowLog().Entries(),
	}
	if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(resp.Traces) {
		resp.Traces = resp.Traces[:n]
	}
	if resp.Traces == nil {
		resp.Traces = []obs.Trace{}
	}
	if resp.SlowLog == nil {
		resp.SlowLog = []obs.SlowQuery{}
	}
	writeJSON(rw, http.StatusOK, resp)
}

// MisestimatesResponse is the JSON shape of GET /api/misestimates.
type MisestimatesResponse struct {
	// Threshold is the factor by which an operator estimate must be off
	// before an analyzed execution lands here.
	Threshold    float64           `json:"threshold"`
	Misestimates []obs.Misestimate `json:"misestimates"`
}

// handleMisestimates serves the planner-misestimation log: statements
// whose analyzed executions found an operator estimate off by at least
// the threshold factor, worst first. ?n= limits the number of rows.
func (s *Server) handleMisestimates(rw http.ResponseWriter, r *http.Request) {
	resp := MisestimatesResponse{
		Threshold:    sparql.MisestimateThreshold(),
		Misestimates: obs.DefaultMisestimates().Snapshot(),
	}
	if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(resp.Misestimates) {
		resp.Misestimates = resp.Misestimates[:n]
	}
	if resp.Misestimates == nil {
		resp.Misestimates = []obs.Misestimate{}
	}
	writeJSON(rw, http.StatusOK, resp)
}

// StatementsResponse is the JSON shape of GET /api/statements.
type StatementsResponse struct {
	Evicted    int64               `json:"evicted"`
	Statements []obs.StatementStat `json:"statements"`
}

// handleStatements serves the per-fingerprint query statistics, sorted
// by total time descending (pg_stat_statements over HTTP). ?n= limits
// the number of rows.
func (s *Server) handleStatements(rw http.ResponseWriter, r *http.Request) {
	tbl := obs.DefaultStatements()
	resp := StatementsResponse{
		Evicted:    tbl.Evicted(),
		Statements: tbl.Snapshot(),
	}
	if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(resp.Statements) {
		resp.Statements = resp.Statements[:n]
	}
	if resp.Statements == nil {
		resp.Statements = []obs.StatementStat{}
	}
	writeJSON(rw, http.StatusOK, resp)
}
