package httpapi

import (
	"net/http"
	"strconv"
	"time"

	"mdw/internal/obs"
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_http_requests_total", "HTTP requests by route pattern and status class.")
	r.SetHelp("mdw_http_request_seconds", "HTTP request latency by route pattern.")
}

// statusRecorder captures the status code a handler writes so the
// middleware can attribute the request to a status class.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// statusClass buckets a status code into "2xx"/"3xx"/"4xx"/"5xx" without
// allocating for the common cases.
func statusClass(code int) string {
	switch {
	case code >= 200 && code < 300:
		return "2xx"
	case code >= 300 && code < 400:
		return "3xx"
	case code >= 400 && code < 500:
		return "4xx"
	case code >= 500:
		return "5xx"
	}
	return strconv.Itoa(code)
}

// observe is the timing middleware every request passes through: it
// resolves the registered route pattern (so metrics aggregate by route,
// not by raw URL), times the handler, and records a per-route latency
// histogram plus a per-route, per-status-class request counter. Metric
// handles are looked up per request, but the registry's lookup is one
// RLock'd map probe on the steady state — routes and status classes are
// a small closed set.
func (s *Server) observe(rw http.ResponseWriter, r *http.Request) {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "(unmatched)"
	}
	sr := &statusRecorder{ResponseWriter: rw}
	sp := obs.StartSpan("http " + pattern)
	t0 := time.Now()
	s.mux.ServeHTTP(sr, r)
	d := time.Since(t0)
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	class := statusClass(sr.status)
	sp.SetLabel("status", strconv.Itoa(sr.status)).Finish()
	reg := obs.Default()
	reg.Histogram("mdw_http_request_seconds", nil, "route", pattern).Observe(d)
	reg.Counter("mdw_http_requests_total", "route", pattern, "class", class).Inc()
}

// handleMetrics serves the default registry in the Prometheus text
// exposition format (version 0.0.4).
func (s *Server) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(rw)
}

// TracesResponse is the JSON shape of GET /api/traces.
type TracesResponse struct {
	Started int64           `json:"started"`
	Traces  []obs.Trace     `json:"traces"`
	SlowLog []obs.SlowQuery `json:"slowQueries"`
}

// handleTraces serves the recent-trace ring and the slow-query log.
func (s *Server) handleTraces(rw http.ResponseWriter, _ *http.Request) {
	tr := obs.DefaultTracer()
	resp := TracesResponse{
		Started: tr.Started(),
		Traces:  tr.Recent(),
		SlowLog: obs.DefaultSlowLog().Entries(),
	}
	if resp.Traces == nil {
		resp.Traces = []obs.Trace{}
	}
	if resp.SlowLog == nil {
		resp.SlowLog = []obs.SlowQuery{}
	}
	writeJSON(rw, http.StatusOK, resp)
}
