package httpapi

// indexHTML is the minimal single-page frontend: a search pane shaped
// like Figure 6 (class groups with counts) and a lineage pane shaped
// like Figure 7 (source → target hops with granularity drill-down).
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Meta-data Warehouse</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem; max-width: 60rem; }
  h1 { font-size: 1.4rem; }
  fieldset { margin-bottom: 1.5rem; border: 1px solid #ccc; padding: 1rem; }
  legend { font-weight: 600; }
  input, select, button { font: inherit; padding: .25rem .5rem; }
  ul { list-style: none; padding-left: 0; }
  li { padding: .15rem 0; }
  .count { color: #666; }
  .rule { color: #a60; font-size: .85em; }
  pre { background: #f6f6f6; padding: .75rem; overflow-x: auto; }
</style>
</head>
<body>
<h1>Credit Suisse Meta-data Warehouse — reproduction</h1>

<fieldset>
  <legend>Search (Section IV.A, Figure 6)</legend>
  <input id="term" placeholder="search term, e.g. customer" size="28">
  <label><input type="checkbox" id="semantic"> semantic (DBpedia synonyms)</label>
  <label><input type="checkbox" id="desc"> match descriptions</label>
  <button onclick="doSearch()">Search</button>
  <ul id="searchResults"></ul>
</fieldset>

<fieldset>
  <legend>Lineage (Section IV.B, Figure 7)</legend>
  <input id="item" placeholder="item path, e.g. application1/dwhdb/mart/v_customer/customer_id" size="52">
  <select id="dir"><option>backward</option><option>forward</option></select>
  <select id="level">
    <option>attribute</option><option>relation</option><option>schema</option><option>application</option>
  </select>
  <button onclick="doLineage()">Trace</button>
  <ul id="lineageResults"></ul>
</fieldset>

<fieldset>
  <legend>SPARQL</legend>
  <input id="sparql" placeholder="SELECT ?x WHERE { ?x a dm:Attribute }" size="60">
  <button onclick="doQuery()">Run</button>
  <pre id="queryResults"></pre>
</fieldset>

<script>
function esc(s) {
  return String(s).replace(/[&<>"]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[c]));
}
async function getJSON(url) {
  const r = await fetch(url);
  const j = await r.json();
  if (!r.ok) throw new Error(j.error || r.statusText);
  return j;
}
async function doSearch() {
  const ul = document.getElementById('searchResults');
  ul.innerHTML = '';
  try {
    const p = new URLSearchParams({term: document.getElementById('term').value});
    if (document.getElementById('semantic').checked) p.set('semantic', 'true');
    if (document.getElementById('desc').checked) p.set('desc', 'true');
    const j = await getJSON('/api/search?' + p);
    ul.innerHTML = '<li><b>Search Results for "' + esc(j.term) + '"</b>' +
      (j.expanded.length > 1 ? ' <span class="count">(expanded: ' + esc(j.expanded.join(', ')) + ')</span>' : '') + '</li>';
    for (const g of j.groups || []) {
      ul.innerHTML += '<li>' + esc(g.label) + ' <span class="count">(' + g.count + ')</span></li>';
    }
    ul.innerHTML += '<li class="count">' + j.instances + ' matching instances</li>';
  } catch (e) { ul.innerHTML = '<li>' + esc(e.message) + '</li>'; }
}
async function doLineage() {
  const ul = document.getElementById('lineageResults');
  ul.innerHTML = '';
  try {
    const p = new URLSearchParams({
      item: document.getElementById('item').value,
      dir: document.getElementById('dir').value,
      level: document.getElementById('level').value,
    });
    const j = await getJSON('/api/lineage?' + p);
    ul.innerHTML = '<li><b>' + esc(j.direction) + ' lineage at ' + esc(j.level) + ' level: ' +
      (j.nodes || []).length + ' nodes, ' + (j.edges || []).length + ' edges</b></li>';
    for (const e of j.edges || []) {
      const name = iri => iri.split('/').pop();
      ul.innerHTML += '<li>' + esc(name(e.from)) + ' → ' + esc(name(e.to)) +
        (e.rule ? ' <span class="rule">[rule: ' + esc(e.rule) + ']</span>' : '') + '</li>';
    }
  } catch (e) { ul.innerHTML = '<li>' + esc(e.message) + '</li>'; }
}
async function doQuery() {
  const pre = document.getElementById('queryResults');
  try {
    const j = await getJSON('/api/query?q=' + encodeURIComponent(document.getElementById('sparql').value));
    pre.textContent = JSON.stringify(j, null, 2);
  } catch (e) { pre.textContent = e.message; }
}
</script>
</body>
</html>
`
