package landscape

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/store"
)

func TestEvolveGrowsLandscape(t *testing.T) {
	l := Generate(Small())
	chainsBefore := len(l.Chains)

	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	before := st.Len("m")

	stats, err := Evolve(l, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NewColumns == 0 {
		t.Fatal("no growth")
	}
	// Reload: only additions appear (the pipeline deduplicates).
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, nil); err != nil {
		t.Fatal(err)
	}
	after := st.Len("m")
	if after <= before {
		t.Fatalf("graph did not grow: %d -> %d", before, after)
	}
	growth := float64(after-before) / float64(before)
	if growth <= 0 || growth > 0.5 {
		t.Errorf("growth = %.2f, implausible for 10%% column growth", growth)
	}
	if len(l.Chains) <= chainsBefore && stats.NewChains > 0 {
		t.Error("chains not recorded")
	}
}

func TestEvolveDeterministic(t *testing.T) {
	a := Generate(Small())
	b := Generate(Small())
	sa, err := Evolve(a, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Evolve(b, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
	ax, _ := a.exportBySource("application-catalog").Encode()
	bx, _ := b.exportBySource("application-catalog").Encode()
	if ax != bx {
		t.Error("evolved exports differ between identical runs")
	}
}

func TestEvolveNewChainsAreTraceable(t *testing.T) {
	l := Generate(Small())
	chainsBefore := len(l.Chains)
	if _, err := Evolve(l, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if len(l.Chains) == chainsBefore {
		t.Skip("no new chains this seed")
	}
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	for _, chain := range l.Chains[chainsBefore:] {
		for i := 0; i+1 < len(chain); i++ {
			from := staging.InstanceIRI(strings.Split(chain[i], "/")...)
			to := staging.InstanceIRI(strings.Split(chain[i+1], "/")...)
			if !st.Contains("m", rdf.T(from, rdf.IsMappedTo, to)) {
				t.Fatalf("new chain edge missing: %s -> %s", chain[i], chain[i+1])
			}
		}
	}
}

func TestEvolveErrors(t *testing.T) {
	l := Generate(Small())
	if _, err := Evolve(l, 1, 0.1); err == nil {
		t.Error("release 1 should error")
	}
	if _, err := Evolve(l, 2, 0); err == nil {
		t.Error("zero growth should error")
	}
	if _, err := Evolve(&Landscape{Config: Small()}, 2, 0.1); err == nil {
		t.Error("landscape without exports should error")
	}
}

func TestEightReleaseCompoundGrowth(t *testing.T) {
	// Eight releases at ~3% compound to the 20–30% annual growth of
	// Section III.A.
	l := Generate(Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	first := st.Len("m")
	for r := 2; r <= 8; r++ {
		if _, err := Evolve(l, r, 0.035); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, nil); err != nil {
		t.Fatal(err)
	}
	last := st.Len("m")
	annual := float64(last-first) / float64(first)
	if annual < 0.10 || annual > 0.45 {
		t.Errorf("annual growth = %.1f%%, want roughly 20-30%%", annual*100)
	}
	t.Logf("annual growth: %.1f%%", annual*100)
}
