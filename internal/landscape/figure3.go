package landscape

import "mdw/internal/staging"

// Figure3Export reconstructs the exact meta-data snippet of Figures 2, 3,
// 5, and 8: the customer identification data flow. A private-banking
// source application delivers client information into the warehouse's
// inbound area, where the Client Information Id is mapped to the Partner
// Id of the integration area, which in turn is mapped to the Customer Id
// of a data-mart view (the paper's Application1 view).
func Figure3Export() *staging.Export {
	return &staging.Export{
		Source: "figure3-customer-identification",
		Applications: []staging.ApplicationDoc{
			{
				Name:  "pb_frontend",
				Owner: "alice",
				Area:  "crm",
				Databases: []staging.DatabaseDoc{{
					Name: "pbdb",
					Schemas: []staging.SchemaDoc{{
						Name:  "clients",
						Layer: "physical",
						Tables: []staging.TableDoc{{
							Name: "client_info",
							Columns: []staging.ColumnDoc{
								{Name: "client_information_id", DataType: "VARCHAR"},
								{Name: "client_name", DataType: "VARCHAR"},
							},
						}},
					}},
				}},
			},
			{
				Name:  "application1",
				Owner: "bob",
				Area:  "Integration_Area",
				Databases: []staging.DatabaseDoc{{
					Name: "dwhdb",
					Schemas: []staging.SchemaDoc{
						{
							Name:  "inbound",
							Layer: "physical",
							Files: []staging.TableDoc{{
								Name: "customer_feed",
								Columns: []staging.ColumnDoc{
									// The staging-area customer_id of
									// Figure 2 (a string).
									{Name: "source_customer_id", DataType: "VARCHAR", Class: "Source_File_Column"},
								},
							}},
						},
						{
							Name:  "integration",
							Layer: "physical",
							Tables: []staging.TableDoc{{
								Name: "partner",
								Columns: []staging.ColumnDoc{
									// The integration-area partner_id (an
									// integer).
									{Name: "partner_id", DataType: "INTEGER", Class: "Application1_Table_Column"},
								},
							}},
						},
						{
							Name:  "mart",
							Layer: "conceptual",
							Views: []staging.TableDoc{{
								Name: "v_customer",
								Columns: []staging.ColumnDoc{
									// The data-mart customer_id of the
									// Application1 view (Figure 3).
									{Name: "customer_id", DataType: "INTEGER", Class: "Application1_View_Column"},
								},
							}},
						},
					},
				}},
			},
		},
		Interfaces: []staging.InterfaceDoc{
			{Name: "itf_pb_to_dwh", From: "pb_frontend", To: "application1"},
		},
		Mappings: []staging.MappingDoc{
			{
				From: "pb_frontend/pbdb/clients/client_info/client_information_id",
				To:   "application1/dwhdb/inbound/customer_feed/source_customer_id",
			},
			{
				From: "application1/dwhdb/inbound/customer_feed/source_customer_id",
				To:   "application1/dwhdb/integration/partner/partner_id",
				Rule: "customer_id is numeric",
			},
			{
				From: "application1/dwhdb/integration/partner/partner_id",
				To:   "application1/dwhdb/mart/v_customer/customer_id",
				Rule: "partner is client",
			},
		},
		Users: []staging.UserDoc{
			{Name: "alice", Roles: []staging.RoleDoc{{Name: "business_owner", App: "pb_frontend"}}},
			{Name: "bob", Roles: []staging.RoleDoc{{Name: "administrator", App: "application1"}}},
			{Name: "carol", Roles: []staging.RoleDoc{{Name: "business_user", App: "application1"}}},
		},
		Concepts: []staging.ConceptDoc{
			{
				Name:  "customer",
				Class: "Customer",
				Implements: []string{
					"application1/dwhdb/mart/v_customer/customer_id",
				},
			},
		},
	}
}

// Figure3Paths returns the instance paths of the Figure 3 mapping chain,
// source first.
func Figure3Paths() []string {
	return []string{
		"pb_frontend/pbdb/clients/client_info/client_information_id",
		"application1/dwhdb/inbound/customer_feed/source_customer_id",
		"application1/dwhdb/integration/partner/partner_id",
		"application1/dwhdb/mart/v_customer/customer_id",
	}
}
