package landscape

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/store"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Small())
	b := Generate(Small())
	if len(a.Chains) != len(b.Chains) {
		t.Fatalf("chain counts differ: %d vs %d", len(a.Chains), len(b.Chains))
	}
	for i := range a.Chains {
		if strings.Join(a.Chains[i], "|") != strings.Join(b.Chains[i], "|") {
			t.Fatalf("chain %d differs", i)
		}
	}
	ax, _ := a.Exports[0].Encode()
	bx, _ := b.Exports[0].Encode()
	if ax != bx {
		t.Error("application export differs between runs with same seed")
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	cfg := Small()
	cfg.Seed = 99
	a := Generate(Small())
	b := Generate(cfg)
	ax, _ := a.Exports[0].Encode()
	bx, _ := b.Exports[0].Encode()
	if ax == bx {
		t.Error("different seeds produced identical exports")
	}
}

func TestChainsShape(t *testing.T) {
	l := Generate(Small())
	if len(l.Chains) == 0 {
		t.Fatal("no mapping chains generated")
	}
	for _, chain := range l.Chains {
		// Stages hops = Stages+1 nodes.
		if len(chain) != l.Config.Stages+1 {
			t.Fatalf("chain length = %d, want %d: %v", len(chain), l.Config.Stages+1, chain)
		}
		if !strings.Contains(chain[1], "/inbound/") {
			t.Errorf("second hop not in inbound area: %v", chain)
		}
		if !strings.Contains(chain[len(chain)-1], "/mart/") {
			t.Errorf("last hop not in mart: %v", chain)
		}
	}
	if len(l.MartColumns) != len(l.Chains) {
		t.Errorf("MartColumns = %d, Chains = %d", len(l.MartColumns), len(l.Chains))
	}
}

func TestOntologyExtendedPerApp(t *testing.T) {
	l := Generate(Small())
	if errs := l.Ontology.Validate(); len(errs) != 0 {
		t.Fatalf("generated ontology invalid: %v", errs)
	}
	// Per-application column classes exist and sit under Table_Column.
	found := false
	for _, iri := range l.Ontology.Classes() {
		if strings.Contains(iri, "App0_") && strings.HasSuffix(iri, "_Table_Column") {
			found = true
			supers := l.Ontology.Superclasses(iri)
			hasBase := false
			for _, s := range supers {
				if s == rdf.DMNS+"Table_Column" {
					hasBase = true
				}
			}
			if !hasBase {
				t.Errorf("%s not under Table_Column: %v", iri, supers)
			}
		}
	}
	if !found {
		t.Error("no per-application column class generated")
	}
}

func TestExportsLoadThroughPipeline(t *testing.T) {
	l := Generate(Small())
	st := store.New()
	stats, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(l.Exports, l.Ontology.Triples())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded == 0 || stats.Derived == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Every chain's isMappedTo edges must exist in the model.
	for _, chain := range l.Chains {
		for i := 0; i+1 < len(chain); i++ {
			from := pathIRI(chain[i])
			to := pathIRI(chain[i+1])
			if !st.Contains("DWH_CURR", rdf.T(from, rdf.IsMappedTo, to)) {
				t.Fatalf("missing mapping edge %s -> %s", from, to)
			}
		}
	}
	// Mart columns are typed with the DWH view-column class, and via the
	// index they are Attributes.
	mart := pathIRI(l.MartColumns[0])
	if !st.Contains("DWH_CURR", rdf.T(mart, rdf.Type, rdf.IRI(rdf.DMNS+"Dwh_View_Column"))) {
		t.Errorf("mart column lacks Dwh_View_Column type")
	}
	if !st.Contains("DWH_CURR$OWLPRIME", rdf.T(mart, rdf.Type, rdf.IRI(rdf.DMNS+"Attribute"))) {
		t.Errorf("mart column not inferred as Attribute")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	l := Generate(Small())
	for _, e := range l.Exports {
		doc, err := e.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := staging.Decode(doc)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if doc != d2 {
			t.Errorf("XML round trip not stable for %s", e.Source)
		}
	}
}

func TestFigure3Export(t *testing.T) {
	st := store.New()
	_, err := staging.Pipeline{Store: st, Model: "m"}.Run(
		[]*staging.Export{Figure3Export()},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	paths := Figure3Paths()
	for i := 0; i+1 < len(paths); i++ {
		from := pathIRI(paths[i])
		to := pathIRI(paths[i+1])
		if !st.Contains("m", rdf.T(from, rdf.IsMappedTo, to)) {
			t.Errorf("missing Figure 3 mapping %s -> %s", paths[i], paths[i+1])
		}
	}
	// customer_id is an Application1_View_Column, as in Figure 3.
	cust := pathIRI(paths[3])
	if !st.Contains("m", rdf.T(cust, rdf.Type, rdf.IRI(rdf.DMNS+"Application1_View_Column"))) {
		t.Error("customer_id not typed Application1_View_Column")
	}
}

func TestPaperScaleConfigSanity(t *testing.T) {
	cfg := PaperScale()
	if cfg.SourceApps < 10 || cfg.Stages < 3 {
		t.Error("paper-scale config implausibly small")
	}
}
