// Package landscape generates a synthetic IT landscape shaped like the
// one Section II of the paper describes: source applications with
// databases, schemas, tables, and columns; a layered data warehouse
// (inbound interface, integration area, data marts — Figure 2);
// interfaces and mapping chains between them (the data flows of
// Figure 1); users with business and IT roles; and business concepts
// implemented by technical items.
//
// Credit Suisse's real meta-data is proprietary, so this generator is the
// substitution: it is deterministic (seeded), parameterized, and
// calibrated so the paper-scale configuration lands near the published
// graph size of ~130,000 nodes and on the order of a million edges per
// version (Section III.A).
package landscape

import (
	"fmt"
	"math/rand"
	"strings"

	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/staging"
)

// Config parameterizes the generator.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// SourceApps is the number of applications feeding the warehouse.
	SourceApps int
	// SchemasPerApp, TablesPerSchema, ColumnsPerTable shape each source
	// application's database.
	SchemasPerApp   int
	TablesPerSchema int
	ColumnsPerTable int
	// MappedFraction is the fraction of source columns that flow into the
	// warehouse through a mapping chain.
	MappedFraction float64
	// Stages is the number of mapping hops per data flow (Figure 2 uses
	// 3: source→inbound, inbound→integration, integration→mart).
	Stages int
	// Users and RolesPerApp populate the roles subject area.
	Users       int
	RolesPerApp int
	// Reports is the number of business reports consuming mart columns.
	Reports int
	// CrypticFraction is the share of columns with legacy names like
	// "TCD100_COL7" (the paper calls these out explicitly).
	CrypticFraction float64
	// RelatedPerApp adds that many symmetric dm:isRelatedTo edges per
	// application to densify the graph.
	RelatedPerApp int
}

// Small returns a compact configuration for tests and examples.
func Small() Config {
	return Config{
		Seed:            1,
		SourceApps:      4,
		SchemasPerApp:   1,
		TablesPerSchema: 3,
		ColumnsPerTable: 5,
		MappedFraction:  0.5,
		Stages:          3,
		Users:           6,
		RolesPerApp:     2,
		Reports:         4,
		CrypticFraction: 0.2,
		RelatedPerApp:   2,
	}
}

// PaperScale returns the configuration calibrated to the graph size the
// paper reports for one version of the warehouse (~130k nodes). Run
// `mdw report scale` or BenchmarkFigure4Pipeline for the measured counts.
func PaperScale() Config {
	return Config{
		Seed:            2009, // the year the warehouse went productive
		SourceApps:      72,
		SchemasPerApp:   2,
		TablesPerSchema: 10,
		ColumnsPerTable: 12,
		MappedFraction:  0.5,
		Stages:          3,
		Users:           500,
		RolesPerApp:     4,
		Reports:         500,
		CrypticFraction: 0.3,
		RelatedPerApp:   1200,
	}
}

// Landscape is one generated IT landscape.
type Landscape struct {
	Config Config
	// Exports are the per-subject-area XML meta-data documents that feed
	// the Figure 4 pipeline.
	Exports []*staging.Export
	// Ontology is the hierarchy (DWH base plus per-application classes).
	Ontology *ontology.Ontology
	// Chains records every generated mapping chain as the list of column
	// instance paths from source to mart; benches and tests use it as
	// ground truth for lineage.
	Chains [][]string
	// MartColumns lists the mart-level column paths, the typical lineage
	// targets.
	MartColumns []string

	extra []rdf.Triple
}

// businessTerms are the vocabulary from which column and concept names
// are drawn; "customer" and friends mirror the paper's running examples.
var businessTerms = []string{
	"customer", "client", "partner", "account", "transaction", "payment",
	"balance", "portfolio", "position", "instrument", "trade", "order",
	"address", "branch", "currency", "amount", "limit", "risk", "rating",
	"contract", "product", "fee", "interest", "loan", "deposit",
	"security", "counterparty", "settlement", "collateral", "margin",
}

var suffixes = []string{"_id", "_name", "_type", "_code", "_date", "_amt", "_status", "_flag"}

var domains = []string{"payments", "accounts", "trading", "risk", "crm", "compliance", "treasury", "custody"}

// technologies is the physical-level meta-data pool (Section II: the
// "programming languages and third-party software used to assemble
// applications" that the warehouse also tracks).
var technologies = []staging.TechnologyDoc{
	{Name: "cobol", Version: "85", Kind: "language"},
	{Name: "pl1", Version: "v2", Kind: "language"},
	{Name: "java", Version: "6", Kind: "language"},
	{Name: "plsql", Version: "10g", Kind: "language"},
	{Name: "oracle", Version: "10g", Kind: "product"},
	{Name: "db2", Version: "9", Kind: "product"},
	{Name: "mq_series", Version: "7", Kind: "product"},
	{Name: "informatica", Version: "8", Kind: "product"},
}

var ruleConds = []string{
	"country = 'CH'", "amount > 0", "status = 'ACTIVE'", "currency = 'USD'",
	"segment = 'PB'", "valid_to IS NULL", "type IN ('P','O')", "",
}

// DWHApp is the application name of the generated data warehouse.
const DWHApp = "dwh"

// Generate builds a deterministic landscape from cfg.
func Generate(cfg Config) *Landscape {
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &Landscape{Config: cfg, Ontology: ontology.DWH()}

	apps := &staging.Export{Source: "application-catalog"}
	flows := &staging.Export{Source: "data-flows"}
	people := &staging.Export{Source: "identity-management"}
	concepts := &staging.Export{Source: "business-glossary"}

	// The warehouse application with its three areas (Figure 2).
	dwh := staging.ApplicationDoc{
		Name:  DWHApp,
		Owner: "user0",
		Area:  "Integration_Area",
		Databases: []staging.DatabaseDoc{{
			Name: "dwhdb",
			Schemas: []staging.SchemaDoc{
				{Name: "inbound", Layer: "physical"},
				{Name: "integration", Layer: "physical"},
				{Name: "mart", Layer: "conceptual"},
			},
		}},
	}
	inbound := &dwh.Databases[0].Schemas[0]
	integration := &dwh.Databases[0].Schemas[1]
	mart := &dwh.Databases[0].Schemas[2]

	// Per-application item classes, mirroring Application1_Item etc.
	appClass := func(app, base string) string {
		local := classLocal(app, base)
		full := rdf.DMNS + local
		if l.Ontology.Class(full) == nil {
			l.Ontology.AddClass(full, classLabel(app, base), rdf.DMNS+base, rdf.DMNS+appItemLocal(app))
		}
		return local
	}
	ensureAppItem := func(app string) {
		full := rdf.DMNS + appItemLocal(app)
		if l.Ontology.Class(full) == nil {
			l.Ontology.AddClass(full, classLabel(app, "Item"), rdf.DMNS+"Application_Item")
		}
	}
	ensureAppItem(DWHApp)
	// DWH view columns are also interface items, like
	// Application1_View_Column in Figure 3.
	l.Ontology.AddClass(rdf.DMNS+classLocal(DWHApp, "View_Column"),
		classLabel(DWHApp, "View_Column"),
		rdf.DMNS+"View_Column", rdf.DMNS+appItemLocal(DWHApp), rdf.DMNS+"Interface_Item")
	l.Ontology.AddClass(rdf.DMNS+classLocal(DWHApp, "Table_Column"),
		classLabel(DWHApp, "Table_Column"),
		rdf.DMNS+"Table_Column", rdf.DMNS+appItemLocal(DWHApp))

	colName := func(rng *rand.Rand, appIdx, tblIdx, colIdx int) string {
		if rng.Float64() < cfg.CrypticFraction {
			return fmt.Sprintf("tcd%d%02d_col%d", appIdx, tblIdx, colIdx)
		}
		term := businessTerms[rng.Intn(len(businessTerms))]
		return term + suffixes[rng.Intn(len(suffixes))]
	}

	usedTerms := map[string]bool{}
	chainSeq := 0
	for a := 0; a < cfg.SourceApps; a++ {
		domain := domains[a%len(domains)]
		appName := fmt.Sprintf("app%d_%s", a, domain)
		ensureAppItem(appName)
		tblClass := appClass(appName, "Table_Column")
		app := staging.ApplicationDoc{
			Name:    appName,
			Owner:   fmt.Sprintf("user%d", a%max(cfg.Users, 1)),
			Area:    domain,
			LogFile: fmt.Sprintf("%s.log", appName),
			Databases: []staging.DatabaseDoc{{
				Name: "db0",
			}},
		}
		// Each application is assembled from one language and one product.
		app.Technologies = append(app.Technologies,
			technologies[rng.Intn(4)], technologies[4+rng.Intn(4)])
		for s := 0; s < cfg.SchemasPerApp; s++ {
			sc := staging.SchemaDoc{Name: fmt.Sprintf("schema%d", s), Layer: "physical"}
			for tbl := 0; tbl < cfg.TablesPerSchema; tbl++ {
				t := staging.TableDoc{Name: fmt.Sprintf("t%d_%d", s, tbl)}
				for c := 0; c < cfg.ColumnsPerTable; c++ {
					name := colName(rng, a, tbl, c)
					for _, term := range businessTerms {
						if len(name) >= len(term) && name[:len(term)] == term {
							usedTerms[term] = true
						}
					}
					t.Columns = append(t.Columns, mkColumn(rng, name, tblClass))
					// Route a fraction of columns through the warehouse.
					if rng.Float64() < cfg.MappedFraction {
						chainSeq++
						l.addChain(cfg, rng, flows, inbound, integration, mart,
							appName, sc.Name, t.Name, name, chainSeq)
					}
				}
				sc.Tables = append(sc.Tables, t)
			}
			app.Databases[0].Schemas = append(app.Databases[0].Schemas, sc)
		}
		apps.Applications = append(apps.Applications, app)

		// One interface from each source application into the warehouse.
		flows.Interfaces = append(flows.Interfaces, staging.InterfaceDoc{
			Name: fmt.Sprintf("itf_%s_to_dwh", appName),
			From: appName,
			To:   DWHApp,
		})
	}
	apps.Applications = append(apps.Applications, dwh)

	// Users and role assignments.
	allApps := make([]string, 0, len(apps.Applications))
	for _, a := range apps.Applications {
		allApps = append(allApps, a.Name)
	}
	roleNames := []string{"business_owner", "business_user", "administrator", "support", "consultant", "accountant"}
	for u := 0; u < cfg.Users; u++ {
		user := staging.UserDoc{Name: fmt.Sprintf("user%d", u)}
		for r := 0; r < cfg.RolesPerApp; r++ {
			user.Roles = append(user.Roles, staging.RoleDoc{
				Name: roleNames[rng.Intn(len(roleNames))],
				App:  allApps[rng.Intn(len(allApps))],
			})
		}
		people.Users = append(people.Users, user)
	}

	// Reports consume mart view columns.
	for r := 0; r < cfg.Reports && len(l.MartColumns) > 0; r++ {
		rep := staging.ConceptDoc{
			Name:  fmt.Sprintf("report%d_%s", r, businessTerms[rng.Intn(len(businessTerms))]),
			Class: "Report",
		}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			rep.Implements = append(rep.Implements, l.MartColumns[rng.Intn(len(l.MartColumns))])
		}
		concepts.Concepts = append(concepts.Concepts, rep)
	}

	// Business concepts for each term that actually occurs.
	for _, term := range businessTerms {
		if !usedTerms[term] {
			continue
		}
		cls := "Entity"
		switch term {
		case "customer":
			cls = "Customer"
		case "client":
			cls = "Client"
		case "partner":
			cls = "Partner"
		case "account":
			cls = "Account"
		case "transaction", "payment", "trade":
			cls = "Transaction"
		}
		doc := staging.ConceptDoc{Name: term, Class: cls}
		for i, mc := range l.MartColumns {
			if i%7 == 0 && containsTerm(mc, term) {
				doc.Implements = append(doc.Implements, mc)
			}
		}
		concepts.Concepts = append(concepts.Concepts, doc)
	}

	l.Exports = []*staging.Export{apps, flows, people, concepts}
	l.relatedEdges(rng, apps)
	return l
}

// addChain extends the warehouse schemas with one mapping chain for the
// given source column and records the mappings in the flows export.
func (l *Landscape) addChain(cfg Config, rng *rand.Rand, flows *staging.Export,
	inbound, integration, mart *staging.SchemaDoc,
	app, schema, table, column string, seq int) {

	sourcePath := fmt.Sprintf("%s/db0/%s/%s/%s", app, schema, table, column)
	chain := []string{sourcePath}

	// Inbound: one source file per source application (created lazily),
	// one field per chain.
	fileName := "in_" + app
	fi := findOrAddFile(inbound, fileName)
	inCol := fmt.Sprintf("%s_%d", column, seq)
	inbound.Files[fi].Columns = append(inbound.Files[fi].Columns,
		mkColumn(rng, inCol, "Source_File_Column"))
	inPath := fmt.Sprintf("%s/dwhdb/inbound/%s/%s", DWHApp, fileName, inCol)
	chain = append(chain, inPath)

	// Intermediate integration hops (Stages-2 of them) and the final mart
	// view column.
	prev := inPath
	for s := 2; s < cfg.Stages; s++ {
		tblName := fmt.Sprintf("int_t%d", seq%97)
		ti := findOrAddTable(integration, tblName)
		col := fmt.Sprintf("%s_i%d", column, seq)
		integration.Tables[ti].Columns = append(integration.Tables[ti].Columns,
			mkColumn(rng, col, classLocal(DWHApp, "Table_Column")))
		path := fmt.Sprintf("%s/dwhdb/integration/%s/%s", DWHApp, tblName, col)
		flows.Mappings = append(flows.Mappings, staging.MappingDoc{
			From: prev, To: path, Rule: ruleConds[rng.Intn(len(ruleConds))],
		})
		chain = append(chain, path)
		prev = path
	}
	viewName := fmt.Sprintf("v_mart%d", seq%53)
	vi := findOrAddView(mart, viewName)
	martCol := fmt.Sprintf("%s_m%d", column, seq)
	mart.Views[vi].Columns = append(mart.Views[vi].Columns,
		mkColumn(rng, martCol, classLocal(DWHApp, "View_Column")))
	martPath := fmt.Sprintf("%s/dwhdb/mart/%s/%s", DWHApp, viewName, martCol)
	flows.Mappings = append(flows.Mappings, staging.MappingDoc{
		From: prev, To: martPath, Rule: ruleConds[rng.Intn(len(ruleConds))],
	})
	chain = append(chain, martPath)

	// The hop from the source application into the inbound area.
	flows.Mappings = append(flows.Mappings, staging.MappingDoc{
		From: sourcePath, To: inPath, Rule: "",
	})

	l.Chains = append(l.Chains, chain)
	l.MartColumns = append(l.MartColumns, martPath)
}

// relatedEdges appends symmetric isRelatedTo facts as an extra export to
// densify the graph (the warehouse's DBpedia-style auxiliary edges).
func (l *Landscape) relatedEdges(rng *rand.Rand, apps *staging.Export) {
	if l.Config.RelatedPerApp == 0 || len(l.MartColumns) < 2 {
		return
	}
	var ts []rdf.Triple
	for range apps.Applications {
		for i := 0; i < l.Config.RelatedPerApp; i++ {
			a := l.MartColumns[rng.Intn(len(l.MartColumns))]
			b := l.MartColumns[rng.Intn(len(l.MartColumns))]
			if a == b {
				continue
			}
			ts = append(ts, rdf.T(pathIRI(a), rdf.IRI(rdf.MDWIsRelatedTo), pathIRI(b)))
		}
	}
	l.extra = ts
}

// ExtraTriples returns generated triples that bypass the XML exports
// (auxiliary relatedness edges).
func (l *Landscape) ExtraTriples() []rdf.Triple { return l.extra }

func pathIRI(path string) rdf.Term {
	return staging.InstanceIRI(splitPath(path)...)
}

func splitPath(p string) []string {
	var out []string
	start := 0
	for i := 0; i < len(p); i++ {
		if p[i] == '/' {
			out = append(out, p[start:i])
			start = i + 1
		}
	}
	return append(out, p[start:])
}

func containsTerm(path, term string) bool {
	for i := 0; i+len(term) <= len(path); i++ {
		if path[i:i+len(term)] == term {
			return true
		}
	}
	return false
}

// mkColumn builds a fully documented column: data type, width, and a
// free-text description mentioning a business term (search also matches
// descriptions, which is how cryptic legacy names like TCD100 stay
// findable).
func mkColumn(rng *rand.Rand, name, class string) staging.ColumnDoc {
	term := businessTerms[rng.Intn(len(businessTerms))]
	other := businessTerms[rng.Intn(len(businessTerms))]
	col := staging.ColumnDoc{
		Name:     name,
		Class:    class,
		DataType: []string{"VARCHAR", "INTEGER", "DATE", "DECIMAL"}[rng.Intn(4)],
		Length:   1 + rng.Intn(64),
		// Descriptions come from a bounded phrase pool so the value
		// nodes are shared, as reference texts in a real glossary are.
		Description: fmt.Sprintf("%s attribute used in %s processing", other, term),
	}
	// Governance tags: person-identifying columns are tagged "pii",
	// monetary ones "confidential" (the instance-to-value tag facts).
	switch {
	case strings.HasPrefix(name, "customer") || strings.HasPrefix(name, "client") ||
		strings.HasPrefix(name, "partner") || strings.HasPrefix(name, "address"):
		col.Tags = append(col.Tags, "pii")
	case strings.HasPrefix(name, "amount") || strings.HasPrefix(name, "balance") ||
		strings.HasPrefix(name, "limit"):
		col.Tags = append(col.Tags, "confidential")
	}
	return col
}

func findOrAddFile(sc *staging.SchemaDoc, name string) int {
	for i := range sc.Files {
		if sc.Files[i].Name == name {
			return i
		}
	}
	sc.Files = append(sc.Files, staging.TableDoc{Name: name})
	return len(sc.Files) - 1
}

func findOrAddTable(sc *staging.SchemaDoc, name string) int {
	for i := range sc.Tables {
		if sc.Tables[i].Name == name {
			return i
		}
	}
	sc.Tables = append(sc.Tables, staging.TableDoc{Name: name})
	return len(sc.Tables) - 1
}

func findOrAddView(sc *staging.SchemaDoc, name string) int {
	for i := range sc.Views {
		if sc.Views[i].Name == name {
			return i
		}
	}
	sc.Views = append(sc.Views, staging.TableDoc{Name: name})
	return len(sc.Views) - 1
}

func classLocal(app, base string) string {
	return exportCase(app) + "_" + base
}

func appItemLocal(app string) string {
	return exportCase(app) + "_Item"
}

func classLabel(app, base string) string {
	lbl := exportCase(app) + " " + base
	out := make([]byte, 0, len(lbl))
	for i := 0; i < len(lbl); i++ {
		if lbl[i] == '_' {
			out = append(out, ' ')
		} else {
			out = append(out, lbl[i])
		}
	}
	return string(out)
}

// exportCase turns "app3_payments" into "App3_payments" so generated
// class local names look like the paper's Application1_View_Column.
func exportCase(app string) string {
	if app == "" {
		return app
	}
	b := []byte(app)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
