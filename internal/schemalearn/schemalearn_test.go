package schemalearn

import (
	"strings"
	"testing"

	"mdw/internal/landscape"
	"mdw/internal/ontology"
	"mdw/internal/relstore"
	"mdw/internal/staging"
	"mdw/internal/store"
)

func smallGraph(t *testing.T) (*store.Store, store.Source) {
	t.Helper()
	l := landscape.Generate(landscape.Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	return st, st.ViewOf("m")
}

func findTable(s *Schema, name string) *TableSpec {
	for i := range s.Tables {
		if s.Tables[i].Name == name {
			return &s.Tables[i]
		}
	}
	return nil
}

func TestLearnBasicShape(t *testing.T) {
	st, src := smallGraph(t)
	s := Learn(src, st.Dict(), DefaultOptions())
	if len(s.Tables) == 0 {
		t.Fatal("no tables learned")
	}
	app := findTable(s, "application")
	if app == nil {
		t.Fatalf("no application table; have %v", tableNames(s))
	}
	if app.Instances < 4 {
		t.Errorf("application instances = %d", app.Instances)
	}
	// Applications all carry hasName.
	var nameCol *ColumnSpec
	for i := range app.Columns {
		if app.Columns[i].Name == "hasname" {
			nameCol = &app.Columns[i]
		}
	}
	if nameCol == nil {
		t.Fatalf("no hasname column: %+v", app.Columns)
	}
	if nameCol.Fill < 0.99 || nameCol.Ref {
		t.Errorf("hasname = %+v", nameCol)
	}
	// usesDatabase is object-valued.
	for _, c := range app.Columns {
		if c.Name == "usesdatabase" && !c.Ref {
			t.Error("usesdatabase should be a reference column")
		}
	}
}

func tableNames(s *Schema) []string {
	var out []string
	for _, t := range s.Tables {
		out = append(out, t.Name)
	}
	return out
}

func TestThresholds(t *testing.T) {
	st, src := smallGraph(t)
	strict := Learn(src, st.Dict(), Options{MinInstances: 1000, MinFill: 0.5})
	if len(strict.Tables) != 0 {
		t.Errorf("threshold ignored: %v", tableNames(strict))
	}
	loose := Learn(src, st.Dict(), Options{MinInstances: 1, MinFill: 0})
	tight := Learn(src, st.Dict(), DefaultOptions())
	if len(loose.Tables) < len(tight.Tables) {
		t.Error("looser thresholds learned fewer tables")
	}
	if loose.Coverage() < tight.Coverage() {
		t.Errorf("loose coverage %.2f < tight %.2f", loose.Coverage(), tight.Coverage())
	}
}

func TestCoverageBounds(t *testing.T) {
	st, src := smallGraph(t)
	s := Learn(src, st.Dict(), DefaultOptions())
	cov := s.Coverage()
	if cov <= 0 || cov > 1 {
		t.Fatalf("coverage = %f", cov)
	}
	if s.Covered > s.Total {
		t.Fatalf("covered %d > total %d", s.Covered, s.Total)
	}
}

func TestDDLRendering(t *testing.T) {
	st, src := smallGraph(t)
	s := Learn(src, st.Dict(), DefaultOptions())
	ddl := s.DDL()
	if len(ddl) != len(s.Tables) {
		t.Fatalf("ddl count = %d", len(ddl))
	}
	joined := strings.Join(ddl, "\n")
	if !strings.Contains(joined, "CREATE TABLE application (") ||
		!strings.Contains(joined, "id TEXT PRIMARY KEY") {
		t.Errorf("ddl:\n%s", joined)
	}
}

func TestApplyAndMigrate(t *testing.T) {
	st, src := smallGraph(t)
	s := Learn(src, st.Dict(), DefaultOptions())
	c := relstore.New()
	if err := s.Apply(c); err != nil {
		t.Fatal(err)
	}
	if len(c.Tables()) != len(s.Tables) {
		t.Fatalf("tables = %v", c.Tables())
	}
	rows, uncovered, err := Migrate(src, st.Dict(), s, c)
	if err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("nothing migrated")
	}
	if uncovered == 0 {
		t.Error("expected a long tail of uncovered triples (the graph argument)")
	}
	// The application table carries the app names.
	apps, err := c.Select("application", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) < 4 {
		t.Errorf("application rows = %d", len(apps))
	}
	// Row count matches the migrated total.
	if c.RowCount() != rows {
		t.Errorf("RowCount %d != rows %d", c.RowCount(), rows)
	}
}

func TestApplyConflict(t *testing.T) {
	st, src := smallGraph(t)
	s := Learn(src, st.Dict(), DefaultOptions())
	c := relstore.New()
	if err := s.Apply(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(c); err == nil {
		t.Error("double apply should fail")
	}
}

func TestLearnEmptyGraph(t *testing.T) {
	st := store.New()
	st.Model("m")
	s := Learn(st.ViewOf("m"), st.Dict(), DefaultOptions())
	if len(s.Tables) != 0 || s.Coverage() != 0 {
		t.Errorf("schema from empty graph: %+v", s)
	}
}

func TestLearnFigure3(t *testing.T) {
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(
		[]*staging.Export{landscape.Figure3Export()}, ontology.DWH().Triples()); err != nil {
		t.Fatal(err)
	}
	s := Learn(st.ViewOf("m"), st.Dict(), Options{MinInstances: 1, MinFill: 0.5})
	// The mapping class must be learned with its from/to references.
	m := findTable(s, "mapping")
	if m == nil {
		t.Fatalf("no mapping table: %v", tableNames(s))
	}
	names := map[string]bool{}
	for _, c := range m.Columns {
		names[c.Name] = true
	}
	if !names["mapsfrom"] || !names["mapsto"] {
		t.Errorf("mapping columns = %v", names)
	}
}
