// Package schemalearn implements the forward-looking idea of the paper's
// conclusion (Section VII): "Maybe, we will be able to quickly learn the
// right meta-data schema after only a few years so that it might make
// sense to move towards more traditional database technology once such a
// meta-data schema has been defined."
//
// The learner inspects the evolved meta-data graph and derives a
// relational schema from it: one table per sufficiently populated class,
// one column per sufficiently used property of that class's instances
// (literal-valued properties become data columns, object-valued ones
// become reference columns). The result can be rendered as DDL, applied
// to a relstore.Catalog, and populated by migrating the instances; the
// coverage report quantifies how much of the graph actually fits — the
// long tail that does not is the empirical argument for keeping the
// graph.
package schemalearn

import (
	"fmt"
	"sort"
	"strings"

	"mdw/internal/rdf"
	"mdw/internal/relstore"
	"mdw/internal/store"
)

// Options tune the learner.
type Options struct {
	// MinInstances skips classes with fewer direct instances.
	MinInstances int
	// MinFill skips properties used by less than this fraction of a
	// class's instances (0 keeps every property).
	MinFill float64
}

// DefaultOptions returns sensible thresholds.
func DefaultOptions() Options {
	return Options{MinInstances: 3, MinFill: 0.5}
}

// ColumnSpec is one learned column.
type ColumnSpec struct {
	// Name is the column name (derived from the property's local name).
	Name string
	// Predicate is the property IRI the column stores.
	Predicate string
	// Ref is true when the property is object-valued (the column stores
	// the target instance's id).
	Ref bool
	// Fill is the fraction of instances carrying the property.
	Fill float64
}

// TableSpec is one learned table.
type TableSpec struct {
	// Class is the IRI of the class the table captures.
	Class string
	// Name is the table name (slugged local class name).
	Name string
	// Instances is the number of direct instances observed.
	Instances int
	Columns   []ColumnSpec
}

// Schema is a learned relational schema with its coverage statistics.
type Schema struct {
	Tables []TableSpec
	// Covered is the number of graph triples the schema can represent;
	// Total is the number of instance-level fact triples examined.
	Covered, Total int
}

// Coverage returns the fraction of examined fact triples the learned
// schema captures.
func (s *Schema) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Covered) / float64(s.Total)
}

// Learn derives a relational schema from the instances of the source.
// Classification rule: an instance belongs to the tables of its directly
// asserted classes (the base facts, not the inferred closure — inherited
// memberships would duplicate every instance into every ancestor table).
func Learn(src store.Source, dict *store.Dict, opt Options) *Schema {
	typeID, ok := dict.Lookup(rdf.Type)
	if !ok {
		return &Schema{}
	}

	// instanceClasses: direct classes per instance; classInsts: reverse.
	classInsts := map[store.ID][]store.ID{}
	src.ForEach(store.Wildcard, typeID, store.Wildcard, func(t store.ETriple) bool {
		cls := dict.Term(t.O)
		if cls.IsIRI() && strings.HasPrefix(cls.Value, rdf.DMNS) {
			classInsts[t.O] = append(classInsts[t.O], t.S)
		}
		return true
	})

	schema := &Schema{}
	type propStat struct {
		count int
		ref   bool
	}
	for cls, insts := range classInsts {
		if len(insts) < opt.MinInstances {
			continue
		}
		stats := map[store.ID]*propStat{}
		for _, inst := range insts {
			seen := map[store.ID]bool{}
			src.ForEach(inst, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
				if t.P == typeID || seen[t.P] {
					return true
				}
				seen[t.P] = true
				st, ok := stats[t.P]
				if !ok {
					st = &propStat{}
					stats[t.P] = st
				}
				st.count++
				if !dict.Term(t.O).IsLiteral() {
					st.ref = true
				}
				return true
			})
		}
		table := TableSpec{
			Class:     dict.Term(cls).Value,
			Name:      strings.ToLower(rdf.LocalName(dict.Term(cls).Value)),
			Instances: len(insts),
		}
		for pid, st := range stats {
			fill := float64(st.count) / float64(len(insts))
			if fill < opt.MinFill {
				continue
			}
			table.Columns = append(table.Columns, ColumnSpec{
				Name:      strings.ToLower(rdf.LocalName(dict.Term(pid).Value)),
				Predicate: dict.Term(pid).Value,
				Ref:       st.ref,
				Fill:      fill,
			})
		}
		sort.Slice(table.Columns, func(i, j int) bool { return table.Columns[i].Name < table.Columns[j].Name })
		schema.Tables = append(schema.Tables, table)
	}
	sort.Slice(schema.Tables, func(i, j int) bool { return schema.Tables[i].Name < schema.Tables[j].Name })

	schema.measureCoverage(src, dict, typeID)
	return schema
}

// measureCoverage counts how many instance fact triples the learned
// schema can represent.
func (s *Schema) measureCoverage(src store.Source, dict *store.Dict, typeID store.ID) {
	// Build lookup: class -> set of predicates covered.
	covered := map[string]map[string]bool{}
	for _, t := range s.Tables {
		preds := map[string]bool{}
		for _, c := range t.Columns {
			preds[c.Predicate] = true
		}
		covered[t.Class] = preds
	}
	// Direct classes per instance.
	instClasses := map[store.ID][]string{}
	src.ForEach(store.Wildcard, typeID, store.Wildcard, func(t store.ETriple) bool {
		instClasses[t.S] = append(instClasses[t.S], dict.Term(t.O).Value)
		return true
	})
	src.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
		if t.P == typeID {
			return true
		}
		classes, isInstance := instClasses[t.S]
		if !isInstance {
			return true // schema/hierarchy triples are out of scope
		}
		s.Total++
		pred := dict.Term(t.P).Value
		for _, cls := range classes {
			if covered[cls][pred] {
				s.Covered++
				break
			}
		}
		return true
	})
}

// DDL renders the learned schema as CREATE TABLE statements.
func (s *Schema) DDL() []string {
	var out []string
	for _, t := range s.Tables {
		var b strings.Builder
		fmt.Fprintf(&b, "CREATE TABLE %s (\n  id TEXT PRIMARY KEY", t.Name)
		for _, c := range t.Columns {
			typ := "TEXT"
			if c.Ref {
				typ = "TEXT REFERENCES *" // target table depends on the instance
			}
			fmt.Fprintf(&b, ",\n  %s %s -- fill %.0f%%", c.Name, typ, c.Fill*100)
		}
		b.WriteString("\n);")
		out = append(out, b.String())
	}
	return out
}

// Apply creates the learned tables in a relational catalog. Each table
// gets an "id" column followed by the learned columns.
func (s *Schema) Apply(c *relstore.Catalog) error {
	for _, t := range s.Tables {
		cols := []relstore.Column{{Name: "id", Type: "TEXT"}}
		for _, col := range t.Columns {
			cols = append(cols, relstore.Column{Name: col.Name, Type: "TEXT"})
		}
		if err := c.CreateTable(t.Name, cols...); err != nil {
			return fmt.Errorf("schemalearn: %w", err)
		}
	}
	return nil
}

// Migrate moves the graph instances into the learned tables of c,
// returning the number of rows inserted and the number of fact triples
// that did not fit the schema (the graph's long tail).
func Migrate(src store.Source, dict *store.Dict, s *Schema, c *relstore.Catalog) (rows, uncovered int, err error) {
	typeID, ok := dict.Lookup(rdf.Type)
	if !ok {
		return 0, 0, nil
	}
	tableByClass := map[string]*TableSpec{}
	for i := range s.Tables {
		tableByClass[s.Tables[i].Class] = &s.Tables[i]
	}
	predIDs := map[*TableSpec][]store.ID{}
	for _, t := range tableByClass {
		for _, col := range t.Columns {
			if id, ok := dict.Lookup(rdf.IRI(col.Predicate)); ok {
				predIDs[t] = append(predIDs[t], id)
			} else {
				predIDs[t] = append(predIDs[t], store.Wildcard)
			}
		}
	}

	migratedPred := map[store.ID]map[store.ID]bool{} // instance -> covered preds
	src.ForEach(store.Wildcard, typeID, store.Wildcard, func(t store.ETriple) bool {
		spec, ok := tableByClass[dict.Term(t.O).Value]
		if !ok {
			return true
		}
		values := []string{rdf.LocalName(dict.Term(t.S).Value)}
		covered := migratedPred[t.S]
		if covered == nil {
			covered = map[store.ID]bool{}
			migratedPred[t.S] = covered
		}
		for i := range spec.Columns {
			pid := predIDs[spec][i]
			val := ""
			if pid != store.Wildcard {
				for _, o := range src.Objects(t.S, pid) {
					val = dict.Term(o).Value
					break
				}
				covered[pid] = true
			}
			values = append(values, val)
		}
		if insErr := c.Insert(spec.Name, values...); insErr != nil {
			err = insErr
			return false
		}
		rows++
		return true
	})
	if err != nil {
		return rows, 0, err
	}
	// Count the fact triples that found no column: triples of instances
	// that were never migrated count entirely, and triples of migrated
	// instances count when their predicate has no column.
	instances := map[store.ID]bool{}
	src.ForEach(store.Wildcard, typeID, store.Wildcard, func(t store.ETriple) bool {
		instances[t.S] = true
		return true
	})
	src.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
		if t.P == typeID || !instances[t.S] {
			return true
		}
		covered, migrated := migratedPred[t.S]
		if !migrated || !covered[t.P] {
			uncovered++
		}
		return true
	})
	return rows, uncovered, nil
}
