package staging

import (
	"fmt"
	"strings"

	"mdw/internal/rdf"
)

// InstanceIRI returns the instance-node IRI for a slash-separated
// meta-data path such as "app1/db1/schema1/table1/customer_id".
func InstanceIRI(path ...string) rdf.Term {
	cleaned := make([]string, len(path))
	for i, p := range path {
		cleaned[i] = Slug(p)
	}
	return rdf.IRI(rdf.InstNS + strings.Join(cleaned, "/"))
}

// Slug normalizes a name for use inside an IRI: lowercased with spaces
// replaced by underscores.
func Slug(name string) string {
	s := strings.ToLower(strings.TrimSpace(name))
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "#", "")
	s = strings.ReplaceAll(s, "<", "")
	s = strings.ReplaceAll(s, ">", "")
	return s
}

func dmClass(local string) rdf.Term { return rdf.IRI(rdf.DMNS + local) }

// Transform converts one XML export into RDF triples — the "transform to
// RDF" stage of Figure 4. Instance IRIs are derived from the containment
// path, every instance gets an rdf:type and a dm:hasName, containment is
// recorded with dm:partOf, and mappings produce both the direct
// dt:isMappedTo edge of Figure 3 and a reified dm:Mapping instance
// carrying the rule condition.
func Transform(e *Export) ([]rdf.Triple, error) {
	var out []rdf.Triple
	add := func(s, p, o rdf.Term) { out = append(out, rdf.T(s, p, o)) }

	typed := func(node rdf.Term, class string, name string) {
		add(node, rdf.Type, dmClass(class))
		add(node, rdf.HasName, rdf.Literal(name))
	}

	for _, app := range e.Applications {
		appNode := InstanceIRI(app.Name)
		typed(appNode, "Application", app.Name)
		if app.Owner != "" {
			owner := InstanceIRI("users", app.Owner)
			add(appNode, rdf.IRI(rdf.MDWOwnedBy), owner)
		}
		if app.Area != "" {
			area := InstanceIRI("areas", app.Area)
			add(appNode, rdf.IRI(rdf.MDWInArea), area)
			typed(area, "Domain", app.Area)
		}
		for _, tech := range app.Technologies {
			tNode := InstanceIRI("tech", tech.Name)
			cls := "Software_Product"
			if Slug(tech.Kind) == "language" {
				cls = "Programming_Language"
			}
			typed(tNode, cls, tech.Name)
			add(appNode, rdf.IRI(rdf.MDWUsesTech), tNode)
			if tech.Version != "" {
				add(tNode, rdf.IRI(rdf.MDWVersionOfTech), rdf.Literal(tech.Version))
			}
		}
		if app.LogFile != "" {
			logNode := InstanceIRI(app.Name, "logs", app.LogFile)
			typed(logNode, "Log_File", app.LogFile)
			add(appNode, rdf.IRI(rdf.MDWHasLogFile), logNode)
			add(logNode, rdf.IRI(rdf.MDWPartOf), appNode)
		}
		for _, db := range app.Databases {
			dbNode := InstanceIRI(app.Name, db.Name)
			typed(dbNode, "Database", db.Name)
			add(appNode, rdf.IRI(rdf.MDWUsesDB), dbNode)
			add(dbNode, rdf.IRI(rdf.MDWPartOf), appNode)
			for _, sc := range db.Schemas {
				scNode := InstanceIRI(app.Name, db.Name, sc.Name)
				typed(scNode, "Schema", sc.Name)
				add(dbNode, rdf.IRI(rdf.MDWHasSchema), scNode)
				add(scNode, rdf.IRI(rdf.MDWPartOf), dbNode)
				if sc.Layer != "" {
					add(scNode, rdf.IRI(rdf.MDWInLayer), rdf.Literal(sc.Layer))
				}
				emitRelation := func(t TableDoc, containerClass, columnClass string) {
					tNode := InstanceIRI(app.Name, db.Name, sc.Name, t.Name)
					typed(tNode, containerClass, t.Name)
					add(scNode, rdf.IRI(rdf.MDWHasTable), tNode)
					add(tNode, rdf.IRI(rdf.MDWPartOf), scNode)
					for _, col := range t.Columns {
						cNode := InstanceIRI(app.Name, db.Name, sc.Name, t.Name, col.Name)
						cls := col.Class
						if cls == "" {
							cls = columnClass
						}
						typed(cNode, cls, col.Name)
						add(tNode, rdf.IRI(rdf.MDWHasColumn), cNode)
						add(cNode, rdf.IRI(rdf.MDWPartOf), tNode)
						if col.DataType != "" {
							add(cNode, rdf.IRI(rdf.MDWDataType), rdf.Literal(col.DataType))
						}
						if col.Length > 0 {
							add(cNode, rdf.IRI(rdf.MDWLength), rdf.Integer(int64(col.Length)))
						}
						if col.Description != "" {
							add(cNode, rdf.IRI(rdf.RDFSComment), rdf.Literal(col.Description))
						}
						for _, tag := range col.Tags {
							add(cNode, rdf.IRI(rdf.MDWTaggedWith), rdf.Literal(Slug(tag)))
						}
					}
				}
				for _, t := range sc.Tables {
					emitRelation(t, "Table", "Table_Column")
				}
				for _, v := range sc.Views {
					emitRelation(v, "View", "View_Column")
				}
				for _, f := range sc.Files {
					emitRelation(f, "Source_File", "Source_File_Column")
				}
			}
		}
	}

	for _, itf := range e.Interfaces {
		node := InstanceIRI("interfaces", itf.Name)
		typed(node, "Interface", itf.Name)
		if itf.From == "" || itf.To == "" {
			return nil, fmt.Errorf("staging: interface %q missing from/to", itf.Name)
		}
		add(InstanceIRI(itf.From), rdf.IRI(rdf.MDWSourceOf), node)
		add(node, rdf.IRI(rdf.MDWConnectsTo), InstanceIRI(itf.To))
		add(InstanceIRI(itf.From), rdf.IRI(rdf.MDWFeeds), InstanceIRI(itf.To))
	}

	for i, m := range e.Mappings {
		if m.From == "" || m.To == "" {
			return nil, fmt.Errorf("staging: mapping %d missing from/to", i)
		}
		from := InstanceIRI(strings.Split(m.From, "/")...)
		to := InstanceIRI(strings.Split(m.To, "/")...)
		add(from, rdf.IsMappedTo, to)
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("mapping_%s_to_%s", rdf.LocalName(from.Value), rdf.LocalName(to.Value))
		}
		mNode := InstanceIRI("mappings", name)
		typed(mNode, "Mapping", name)
		add(mNode, rdf.IRI(rdf.MDWMapsFrom), from)
		add(mNode, rdf.IRI(rdf.MDWMapsTo), to)
		if m.Rule != "" {
			add(mNode, rdf.IRI(rdf.MDWRuleCond), rdf.Literal(m.Rule))
		}
	}

	for _, u := range e.Users {
		uNode := InstanceIRI("users", u.Name)
		typed(uNode, "User", u.Name)
		for _, r := range u.Roles {
			rNode := InstanceIRI("roles", r.Name, r.App)
			typed(rNode, roleClass(r.Name), r.Name)
			add(uNode, rdf.IRI(rdf.MDWHasRole), rNode)
			if r.App != "" {
				add(rNode, rdf.IRI(rdf.MDWPartOf), InstanceIRI(r.App))
			}
		}
	}

	for _, c := range e.Concepts {
		cls := c.Class
		if cls == "" {
			cls = "Business_Concept"
		}
		node := InstanceIRI("concepts", c.Name)
		typed(node, cls, c.Name)
		for _, impl := range c.Implements {
			add(InstanceIRI(strings.Split(impl, "/")...), rdf.IRI(rdf.MDWImplements), node)
		}
	}

	return out, nil
}

// roleClass maps well-known role names onto the role hierarchy; unknown
// roles land under the generic Role class.
func roleClass(name string) string {
	switch Slug(name) {
	case "business_owner":
		return "Business_Owner"
	case "business_user":
		return "Business_User"
	case "administrator":
		return "Administrator"
	case "support":
		return "Support"
	default:
		return "Role"
	}
}
