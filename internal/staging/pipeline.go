package staging

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/store"
)

// Metric handles, resolved once at package init.
var (
	obsLoadHist = obs.Default().Histogram("mdw_staging_bulkload_seconds", nil)
	obsLoaded   = obs.Default().Counter("mdw_staging_loaded_total")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_staging_bulkload_seconds", "Bulk-load latency (staging table into the model, incl. materialization when requested).")
	r.SetHelp("mdw_staging_loaded_total", "Distinct triples moved from staging tables into models.")
}

// Table is a staging table: the intermediate triple buffer between the
// XML→RDF transform and the bulk load into the RDF model tables
// (Figure 4). Both meta-data facts and the ontology export are inserted
// into the same staging tables before loading.
type Table struct {
	mu      sync.Mutex
	triples []rdf.Triple
}

// NewTable returns an empty staging table.
func NewTable() *Table { return &Table{} }

// InsertTriples appends raw triples (the ontology-file import path).
func (t *Table) InsertTriples(ts []rdf.Triple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.triples = append(t.triples, ts...)
}

// InsertExport transforms one XML export and appends its triples.
func (t *Table) InsertExport(e *Export) error {
	ts, err := Transform(e)
	if err != nil {
		return err
	}
	t.InsertTriples(ts)
	return nil
}

// InsertXML parses and transforms one XML document string.
func (t *Table) InsertXML(doc string) error {
	e, err := Decode(doc)
	if err != nil {
		return fmt.Errorf("staging: decode: %w", err)
	}
	return t.InsertExport(e)
}

// Len returns the number of staged triples (duplicates included; the
// bulk load deduplicates).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.triples)
}

// Triples returns a copy of the staged triples.
func (t *Table) Triples() []rdf.Triple {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]rdf.Triple, len(t.triples))
	copy(out, t.triples)
	return out
}

// Clear empties the staging table (after a successful load).
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.triples = t.triples[:0]
}

// LoadStats summarizes one bulk load.
type LoadStats struct {
	Staged   int // triples in the staging table
	Loaded   int // distinct triples added to the model
	Derived  int // entailed triples added to the index model
	Model    string
	IndexMod string
}

// BulkLoad moves the staged triples into the named model of st and, when
// materialize is true, rebuilds the model's OWLPRIME index — the
// "indexes for semantic web reasoning" of Figure 4. On success only the
// snapshot that was actually loaded is removed from the staging table:
// triples inserted concurrently while the load ran stay staged for the
// next load instead of being silently discarded.
func (t *Table) BulkLoad(st *store.Store, model string, materialize bool) (LoadStats, error) {
	return t.BulkLoadCtx(context.Background(), st, model, materialize)
}

// BulkLoadCtx is BulkLoad carrying a request context: the load runs
// under a "staging.bulkload" span — nested in the request's trace when
// ctx carries one, the root of a new trace otherwise — labelled with the
// staged/loaded/derived triple counts.
func (t *Table) BulkLoadCtx(ctx context.Context, st *store.Store, model string, materialize bool) (LoadStats, error) {
	sp, _ := obs.StartChildCtx(ctx, "staging.bulkload")
	sp.SetLabel("model", model)
	defer sp.Finish()
	t0 := time.Now()
	t.mu.Lock()
	n := len(t.triples)
	staged := make([]rdf.Triple, n)
	copy(staged, t.triples)
	t.mu.Unlock()

	stats := LoadStats{Staged: n, Model: model}
	stats.Loaded = st.AddAll(model, staged)
	if materialize {
		idx, nDerived, err := reason.NewEngine(st).Materialize(model)
		if err != nil {
			return stats, err
		}
		stats.IndexMod = idx
		stats.Derived = nDerived
	}
	// Trim exactly the loaded prefix under the same mutex the insert
	// paths use; anything appended since the snapshot shifts down.
	t.mu.Lock()
	k := copy(t.triples, t.triples[n:])
	t.triples = t.triples[:k]
	t.mu.Unlock()
	obsLoadHist.ObserveSince(t0)
	obsLoaded.Add(int64(stats.Loaded))
	sp.SetLabel("staged", strconv.Itoa(stats.Staged)).
		SetLabel("loaded", strconv.Itoa(stats.Loaded)).
		SetLabel("derived", strconv.Itoa(stats.Derived))
	return stats, nil
}

// Pipeline bundles the full Figure 4 flow for convenience: XML exports
// and an ontology in, a loaded and indexed model out.
type Pipeline struct {
	Store *store.Store
	Model string
}

// Run stages every export and the ontology triples, bulk-loads them, and
// materializes the OWLPRIME index.
func (p Pipeline) Run(exports []*Export, ontologyTriples []rdf.Triple) (LoadStats, error) {
	return p.RunCtx(context.Background(), exports, ontologyTriples)
}

// RunCtx is Run carrying a request context (see Table.BulkLoadCtx).
func (p Pipeline) RunCtx(ctx context.Context, exports []*Export, ontologyTriples []rdf.Triple) (LoadStats, error) {
	tbl := NewTable()
	for i, e := range exports {
		if err := tbl.InsertExport(e); err != nil {
			return LoadStats{}, fmt.Errorf("staging: export %d: %w", i, err)
		}
	}
	tbl.InsertTriples(ontologyTriples)
	return tbl.BulkLoadCtx(ctx, p.Store, p.Model, true)
}
