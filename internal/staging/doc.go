// Package staging implements the load pipeline of Figure 4: source
// meta-data arrives as XML exports, is transformed into RDF triples,
// collected in staging tables, and bulk-loaded into the RDF model tables
// of the store. The ontology (hierarchy) export joins the facts in the
// same staging tables, connected through the meta-data schema — exactly
// the flow the paper describes in Section III.B.
package staging

import "encoding/xml"

// Export is one source meta-data XML document. Every subject area of
// Figure 1 (applications with their databases and data structures,
// interfaces, mappings/data flows, users and roles, business concepts)
// has a corresponding element.
type Export struct {
	XMLName      xml.Name         `xml:"metadata"`
	Source       string           `xml:"source,attr"`
	Applications []ApplicationDoc `xml:"application"`
	Interfaces   []InterfaceDoc   `xml:"interface"`
	Mappings     []MappingDoc     `xml:"mapping"`
	Users        []UserDoc        `xml:"user"`
	Concepts     []ConceptDoc     `xml:"concept"`
}

// ApplicationDoc describes one application and its database structures.
type ApplicationDoc struct {
	Name      string        `xml:"name,attr"`
	Owner     string        `xml:"owner,attr,omitempty"`
	Area      string        `xml:"area,attr,omitempty"` // DWH area or business domain
	Databases []DatabaseDoc `xml:"database"`
	// Technologies lists the physical-level meta-data of Section II /
	// Figure 9: the programming languages and third-party software the
	// application is assembled from.
	Technologies []TechnologyDoc `xml:"technology"`
	// LogFile optionally names the application's event log, which
	// auditors inspect (Section II).
	LogFile string `xml:"logfile,attr,omitempty"`
}

// TechnologyDoc is one language or product dependency of an application.
type TechnologyDoc struct {
	Name    string `xml:"name,attr"`
	Version string `xml:"version,attr,omitempty"`
	// Kind is "language" or "product".
	Kind string `xml:"kind,attr,omitempty"`
}

// DatabaseDoc describes one database of an application.
type DatabaseDoc struct {
	Name    string      `xml:"name,attr"`
	Schemas []SchemaDoc `xml:"schema"`
}

// SchemaDoc describes one database schema. Layer distinguishes the
// conceptual and physical abstraction levels users can filter on.
type SchemaDoc struct {
	Name   string     `xml:"name,attr"`
	Layer  string     `xml:"layer,attr,omitempty"`
	Tables []TableDoc `xml:"table"`
	Views  []TableDoc `xml:"view"`
	Files  []TableDoc `xml:"file"`
}

// TableDoc describes a table, view, or source file with its columns.
type TableDoc struct {
	Name    string      `xml:"name,attr"`
	Columns []ColumnDoc `xml:"column"`
}

// ColumnDoc describes one column (or file field). Class optionally names
// the meta-data schema class (local name in the dm: namespace) the column
// instance belongs to; when empty the transform picks the structural
// default (Table_Column, View_Column, or Source_File_Column).
type ColumnDoc struct {
	Name     string `xml:"name,attr"`
	DataType string `xml:"type,attr,omitempty"`
	Class    string `xml:"class,attr,omitempty"`
	// Length is the column width (0 means unspecified).
	Length int `xml:"length,attr,omitempty"`
	// Description is free-text documentation; search matches against it.
	Description string `xml:"description,attr,omitempty"`
	// Tags carries governance markers (e.g. "pii", "confidential") that
	// become the Credit Suisse-specific instance-to-value tag facts of
	// Section III.B.
	Tags []string `xml:"tag"`
}

// InterfaceDoc describes a physical interface between two applications.
type InterfaceDoc struct {
	Name string `xml:"name,attr"`
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

// MappingDoc describes one mapping of a data flow: From and To reference
// columns by their slash-separated path (app/db/schema/table/column).
// Rule optionally carries the transformation rule condition used by the
// filtered-lineage extension.
type MappingDoc struct {
	Name string `xml:"name,attr,omitempty"`
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
	Rule string `xml:"rule,attr,omitempty"`
}

// UserDoc describes a user with role assignments.
type UserDoc struct {
	Name  string    `xml:"name,attr"`
	Roles []RoleDoc `xml:"role"`
}

// RoleDoc assigns one role on one application to the enclosing user.
type RoleDoc struct {
	Name string `xml:"name,attr"`
	App  string `xml:"app,attr"`
}

// ConceptDoc links a business concept (e.g. Customer) to the technical
// items that implement it.
type ConceptDoc struct {
	Name       string   `xml:"name,attr"`
	Class      string   `xml:"class,attr,omitempty"`
	Implements []string `xml:"implements"`
}

// MarshalXML is provided by encoding/xml via the struct tags; Encode
// renders the export as an XML document string.
func (e *Export) Encode() (string, error) {
	b, err := xml.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", err
	}
	return xml.Header + string(b) + "\n", nil
}

// Decode parses an XML export document.
func Decode(doc string) (*Export, error) {
	var e Export
	if err := xml.Unmarshal([]byte(doc), &e); err != nil {
		return nil, err
	}
	return &e, nil
}
