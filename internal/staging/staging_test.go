package staging

import (
	"strconv"
	"strings"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func sampleExport() *Export {
	return &Export{
		Source: "unit-test",
		Applications: []ApplicationDoc{{
			Name:  "App One",
			Owner: "alice",
			Area:  "payments",
			Databases: []DatabaseDoc{{
				Name: "db1",
				Schemas: []SchemaDoc{{
					Name:  "s1",
					Layer: "physical",
					Tables: []TableDoc{{
						Name: "t1",
						Columns: []ColumnDoc{
							{Name: "customer_id", DataType: "VARCHAR", Length: 10, Description: "customer key"},
							{Name: "amount", DataType: "DECIMAL"},
						},
					}},
					Views: []TableDoc{{
						Name:    "v1",
						Columns: []ColumnDoc{{Name: "balance"}},
					}},
					Files: []TableDoc{{
						Name:    "f1",
						Columns: []ColumnDoc{{Name: "feed_col"}},
					}},
				}},
			}},
		}},
		Interfaces: []InterfaceDoc{{Name: "itf1", From: "App One", To: "dwh"}},
		Mappings: []MappingDoc{{
			From: "App One/db1/s1/t1/customer_id",
			To:   "dwh/db/s/t/c",
			Rule: "x > 0",
		}},
		Users: []UserDoc{{
			Name:  "alice",
			Roles: []RoleDoc{{Name: "business_owner", App: "App One"}, {Name: "weird_role", App: "App One"}},
		}},
		Concepts: []ConceptDoc{{
			Name:       "customer",
			Class:      "Customer",
			Implements: []string{"App One/db1/s1/t1/customer_id"},
		}},
	}
}

func TestSlugAndInstanceIRI(t *testing.T) {
	if Slug("App One") != "app_one" {
		t.Errorf("Slug = %q", Slug("App One"))
	}
	if Slug(" Trim<Me># ") != "trimme" {
		t.Errorf("Slug = %q", Slug(" Trim<Me># "))
	}
	iri := InstanceIRI("App One", "db1", "T1")
	if iri.Value != rdf.InstNS+"app_one/db1/t1" {
		t.Errorf("InstanceIRI = %s", iri)
	}
}

func TestTransform(t *testing.T) {
	ts, err := Transform(sampleExport())
	if err != nil {
		t.Fatal(err)
	}
	has := func(want rdf.Triple) bool {
		for _, tr := range ts {
			if tr == want {
				return true
			}
		}
		return false
	}
	app := InstanceIRI("App One")
	col := InstanceIRI("App One", "db1", "s1", "t1", "customer_id")
	checks := []rdf.Triple{
		rdf.T(app, rdf.Type, rdf.IRI(rdf.DMNS+"Application")),
		rdf.T(app, rdf.HasName, rdf.Literal("App One")),
		rdf.T(app, rdf.IRI(rdf.MDWOwnedBy), InstanceIRI("users", "alice")),
		rdf.T(col, rdf.Type, rdf.IRI(rdf.DMNS+"Table_Column")),
		rdf.T(col, rdf.IRI(rdf.MDWDataType), rdf.Literal("VARCHAR")),
		rdf.T(col, rdf.IRI(rdf.MDWLength), rdf.Integer(10)),
		rdf.T(col, rdf.IRI(rdf.RDFSComment), rdf.Literal("customer key")),
		rdf.T(InstanceIRI("App One", "db1", "s1", "v1", "balance"), rdf.Type, rdf.IRI(rdf.DMNS+"View_Column")),
		rdf.T(InstanceIRI("App One", "db1", "s1", "f1", "feed_col"), rdf.Type, rdf.IRI(rdf.DMNS+"Source_File_Column")),
		rdf.T(col, rdf.IsMappedTo, InstanceIRI("dwh", "db", "s", "t", "c")),
		rdf.T(app, rdf.IRI(rdf.MDWFeeds), InstanceIRI("dwh")),
		rdf.T(InstanceIRI("users", "alice"), rdf.Type, rdf.IRI(rdf.DMNS+"User")),
		rdf.T(InstanceIRI("roles", "business_owner", "App One"), rdf.Type, rdf.IRI(rdf.DMNS+"Business_Owner")),
		rdf.T(InstanceIRI("roles", "weird_role", "App One"), rdf.Type, rdf.IRI(rdf.DMNS+"Role")),
		rdf.T(col, rdf.IRI(rdf.MDWImplements), InstanceIRI("concepts", "customer")),
		rdf.T(InstanceIRI("concepts", "customer"), rdf.Type, rdf.IRI(rdf.DMNS+"Customer")),
	}
	for _, want := range checks {
		if !has(want) {
			t.Errorf("missing triple %v", want)
		}
	}
	// The mapping is reified with its rule.
	foundRule := false
	for _, tr := range ts {
		if tr.P.Value == rdf.MDWRuleCond && tr.O.Value == "x > 0" {
			foundRule = true
		}
	}
	if !foundRule {
		t.Error("mapping rule not reified")
	}
}

func TestTransformErrors(t *testing.T) {
	bad := &Export{Interfaces: []InterfaceDoc{{Name: "x", From: "", To: "b"}}}
	if _, err := Transform(bad); err == nil {
		t.Error("interface without from should fail")
	}
	bad = &Export{Mappings: []MappingDoc{{From: "a/b", To: ""}}}
	if _, err := Transform(bad); err == nil {
		t.Error("mapping without to should fail")
	}
}

func TestXMLEncodeDecode(t *testing.T) {
	e := sampleExport()
	doc, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, `<metadata source="unit-test">`) {
		t.Errorf("doc:\n%s", doc)
	}
	back, err := Decode(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Applications) != 1 || back.Applications[0].Name != "App One" {
		t.Errorf("decoded = %+v", back)
	}
	if len(back.Mappings) != 1 || back.Mappings[0].Rule != "x > 0" {
		t.Errorf("mappings = %+v", back.Mappings)
	}
	if _, err := Decode("not xml"); err == nil {
		t.Error("invalid XML accepted")
	}
}

func TestStagingTableAndBulkLoad(t *testing.T) {
	tbl := NewTable()
	if err := tbl.InsertExport(sampleExport()); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() == 0 {
		t.Fatal("nothing staged")
	}
	staged := tbl.Len()
	// Insert the same export again: staging keeps duplicates, the load
	// deduplicates.
	if err := tbl.InsertExport(sampleExport()); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2*staged {
		t.Errorf("staged = %d, want %d", tbl.Len(), 2*staged)
	}
	st := store.New()
	stats, err := tbl.BulkLoad(st, "m", true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != staged {
		t.Errorf("loaded = %d, want %d (deduplicated)", stats.Loaded, staged)
	}
	if stats.IndexMod != "m$OWLPRIME" {
		t.Errorf("index model = %q", stats.IndexMod)
	}
	if tbl.Len() != 0 {
		t.Error("staging table not cleared after load")
	}
}

func TestInsertXML(t *testing.T) {
	doc, _ := sampleExport().Encode()
	tbl := NewTable()
	if err := tbl.InsertXML(doc); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() == 0 {
		t.Error("nothing staged from XML")
	}
	if err := tbl.InsertXML("garbage"); err == nil {
		t.Error("garbage XML accepted")
	}
}

func TestPipelineRun(t *testing.T) {
	st := store.New()
	stats, err := Pipeline{Store: st, Model: "m"}.Run([]*Export{sampleExport()}, []rdf.Triple{
		rdf.T(rdf.IRI(rdf.DMNS+"Table_Column"), rdf.SubClassOf, rdf.IRI(rdf.DMNS+"Column")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Derived == 0 {
		t.Error("ontology produced no entailments")
	}
	// The inheritance is queryable through the index model.
	col := InstanceIRI("App One", "db1", "s1", "t1", "customer_id")
	if !st.Contains("m$OWLPRIME", rdf.T(col, rdf.Type, rdf.IRI(rdf.DMNS+"Column"))) {
		t.Error("derived type missing")
	}
	// Triples() returns copies.
	tbl := NewTable()
	tbl.InsertTriples([]rdf.Triple{rdf.T(col, rdf.Type, rdf.Class)})
	got := tbl.Triples()
	got[0] = rdf.Triple{}
	if tbl.Triples()[0] == (rdf.Triple{}) {
		t.Error("Triples() exposes internal slice")
	}
}

// TestBulkLoadConcurrentInsertNoLoss is the regression test for the
// snapshot-then-Clear data-loss bug: BulkLoad used to clear the whole
// staging table after loading only the snapshot it took up front, so
// triples inserted while the load ran were silently discarded. Run with
// -race. A final BulkLoad drains leftovers; every inserted triple must
// end up in the model.
func TestBulkLoadConcurrentInsertNoLoss(t *testing.T) {
	const total = 2000
	tbl := NewTable()
	st := store.New()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			tbl.InsertTriples([]rdf.Triple{rdf.T(
				rdf.IRI(rdf.DMNS+"item_"+strconv.Itoa(i)),
				rdf.Type,
				rdf.IRI(rdf.DMNS+"Attribute"),
			)})
		}
	}()

	for {
		if _, err := tbl.BulkLoad(st, "m", false); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	// Drain anything staged after the last in-loop load.
	if _, err := tbl.BulkLoad(st, "m", false); err != nil {
		t.Fatal(err)
	}

	if got := st.Len("m"); got != total {
		t.Fatalf("model has %d triples, want %d: concurrent inserts were dropped", got, total)
	}
	if n := tbl.Len(); n != 0 {
		t.Fatalf("staging table still holds %d triples after draining", n)
	}
}
