package lineage

import "mdw/internal/obs"

// Metric handles, resolved once at package init.
var (
	obsTraceHist  = obs.Default().Histogram("mdw_lineage_trace_seconds", nil)
	obsRollupHist = obs.Default().Histogram("mdw_lineage_rollup_seconds", nil)
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_lineage_trace_seconds", "Lineage BFS traversal latency.")
	r.SetHelp("mdw_lineage_rollup_seconds", "Lineage graph roll-up latency.")
}
