// Package lineage implements the provenance tool of Section IV.B: given
// an information item, it follows the dt:isMappedTo edges of the
// meta-data graph to answer where the item's data comes from (backward
// lineage / provenance) and which items depend on it (forward lineage /
// impact analysis). The traversal path is exactly the paper's regular
// expression "(isMappedTo)* rdf:type" (Figure 8).
//
// Two extensions from the lessons-learned section are included:
//
//   - rule-condition filters: each mapping carries an optional rule
//     condition (dt:hasRuleCondition on the reified dm:Mapping node);
//     a RuleFilter prunes traversal to the mappings whose conditions can
//     fire, keeping the number of paths small "even with a significant
//     number of steps and stages" (Section V);
//   - roll-up navigation: lineage nodes can be rolled up from the
//     attribute level to their table, schema, or application, the
//     drill-down/scope adjustment of the Figure 7 frontend.
package lineage

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/store"
)

// Direction selects traversal orientation.
type Direction int

const (
	// Backward follows mappings from target to source (provenance).
	Backward Direction = iota
	// Forward follows mappings from source to target (impact analysis).
	Forward
)

// String names the direction.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Edge is one mapping hop in a lineage graph.
type Edge struct {
	From, To rdf.Term
	// Rule is the mapping's rule condition ("" when none is recorded).
	Rule string
	// Mapping is the reified dm:Mapping node, when one exists.
	Mapping rdf.Term
}

// Node is one item in a lineage graph.
type Node struct {
	IRI  rdf.Term
	Name string
	// Classes lists the dm: classes of the node (via the OWLPRIME index,
	// i.e. the full "(isMappedTo)* rdf:type" answer of Figure 8).
	Classes []string
	// Depth is the hop distance from the root.
	Depth int
}

// Graph is the result of a lineage traversal.
type Graph struct {
	Root      rdf.Term
	Direction Direction
	Nodes     map[rdf.Term]*Node
	Edges     []Edge
}

// Options configure a traversal.
type Options struct {
	// MaxDepth bounds the number of hops (0 = unbounded).
	MaxDepth int
	// RuleFilter, when set, prunes mapping edges: only edges whose rule
	// condition satisfies the predicate are followed. Edges without a
	// recorded rule pass a nil-safe empty string.
	RuleFilter func(rule string) bool
	// TargetClasses, when non-empty, restricts reported nodes to
	// instances of ALL the given classes (besides the root) — steps 1
	// and 2 of the Section IV.B algorithm.
	TargetClasses []string
}

// Service answers lineage queries over one model of a store.
type Service struct {
	st    *store.Store
	model string
}

// New returns a lineage service for the named model.
func New(st *store.Store, model string) *Service {
	return &Service{st: st, model: model}
}

// Trace runs a lineage traversal from the item in the given direction.
func (s *Service) Trace(item rdf.Term, dir Direction, opt Options) (*Graph, error) {
	return s.TraceCtx(context.Background(), item, dir, opt)
}

// TraceCtx is Trace carrying a request context: the traversal runs under
// a "lineage.trace" span, nested in the request's trace when ctx carries
// one, the root of a new trace otherwise.
func (s *Service) TraceCtx(ctx context.Context, item rdf.Term, dir Direction, opt Options) (*Graph, error) {
	sp, _ := obs.StartChildCtx(ctx, "lineage.trace")
	sp.SetLabel("item", item.Value).SetLabel("direction", dir.String())
	defer sp.Finish()
	defer obsTraceHist.ObserveSince(time.Now())
	view, err := s.indexedView()
	if err != nil {
		return nil, err
	}
	dict := s.st.Dict()
	rootID, ok := dict.Lookup(item)
	if !ok {
		return nil, fmt.Errorf("lineage: unknown item %s", item)
	}
	mappedID, ok := dict.Lookup(rdf.IsMappedTo)
	if !ok {
		// A graph without any mappings has trivial lineage.
		g := s.newGraph(item, dir)
		g.Nodes[item] = s.describe(view, dict, rootID, 0)
		return g, nil
	}

	var classFilter []store.ID
	for _, c := range opt.TargetClasses {
		id, found := dict.Lookup(rdf.IRI(c))
		if !found {
			return s.newGraph(item, dir), nil
		}
		classFilter = append(classFilter, id)
	}
	typeID, _ := dict.Lookup(rdf.Type)

	g := s.newGraph(item, dir)
	g.Nodes[item] = s.describe(view, dict, rootID, 0)

	type qe struct {
		id    store.ID
		depth int
	}
	visited := map[store.ID]bool{rootID: true}
	queue := []qe{{rootID, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if opt.MaxDepth > 0 && cur.depth >= opt.MaxDepth {
			continue
		}
		var nexts []store.ID
		if dir == Backward {
			nexts = view.Subjects(mappedID, cur.id)
		} else {
			nexts = view.Objects(cur.id, mappedID)
		}
		for _, nxt := range nexts {
			var from, to store.ID
			if dir == Backward {
				from, to = nxt, cur.id
			} else {
				from, to = cur.id, nxt
			}
			rule, mapping := s.mappingRule(view, dict, from, to)
			if opt.RuleFilter != nil && !opt.RuleFilter(rule) {
				continue
			}
			g.Edges = append(g.Edges, Edge{
				From: dict.Term(from), To: dict.Term(to), Rule: rule, Mapping: mapping,
			})
			if visited[nxt] {
				continue
			}
			visited[nxt] = true
			if s.passesClassFilter(view, nxt, typeID, classFilter) {
				g.Nodes[dict.Term(nxt)] = s.describe(view, dict, nxt, cur.depth+1)
			}
			queue = append(queue, qe{nxt, cur.depth + 1})
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if c := rdf.Compare(g.Edges[i].From, g.Edges[j].From); c != 0 {
			return c < 0
		}
		return rdf.Compare(g.Edges[i].To, g.Edges[j].To) < 0
	})
	return g, nil
}

func (s *Service) newGraph(root rdf.Term, dir Direction) *Graph {
	return &Graph{Root: root, Direction: dir, Nodes: map[rdf.Term]*Node{}}
}

func (s *Service) passesClassFilter(view *store.View, id store.ID, typeID store.ID, filter []store.ID) bool {
	for _, cls := range filter {
		if !view.Contains(store.ETriple{S: id, P: typeID, O: cls}) {
			return false
		}
	}
	return true
}

// mappingRule finds the reified mapping node for the (from, to) hop and
// returns its rule condition.
func (s *Service) mappingRule(view *store.View, dict *store.Dict, from, to store.ID) (string, rdf.Term) {
	mapsFromID, ok1 := dict.Lookup(rdf.IRI(rdf.MDWMapsFrom))
	mapsToID, ok2 := dict.Lookup(rdf.IRI(rdf.MDWMapsTo))
	if !ok1 || !ok2 {
		return "", rdf.Term{}
	}
	for _, m := range view.Subjects(mapsFromID, from) {
		if view.Contains(store.ETriple{S: m, P: mapsToID, O: to}) {
			ruleID, ok := dict.Lookup(rdf.IRI(rdf.MDWRuleCond))
			if !ok {
				return "", dict.Term(m)
			}
			for _, r := range view.Objects(m, ruleID) {
				return dict.Term(r).Value, dict.Term(m)
			}
			return "", dict.Term(m)
		}
	}
	return "", rdf.Term{}
}

// describe builds the Node record: name and dm: classes (through the
// entailment index, matching Figure 8's rdf:type step).
func (s *Service) describe(view *store.View, dict *store.Dict, id store.ID, depth int) *Node {
	n := &Node{IRI: dict.Term(id), Depth: depth}
	if nameID, ok := dict.Lookup(rdf.HasName); ok {
		for _, v := range view.Objects(id, nameID) {
			n.Name = dict.Term(v).Value
			break
		}
	}
	if n.Name == "" {
		n.Name = rdf.LocalName(n.IRI.Value)
	}
	if typeID, ok := dict.Lookup(rdf.Type); ok {
		for _, c := range view.Objects(id, typeID) {
			iri := dict.Term(c).Value
			if strings.HasPrefix(iri, rdf.DMNS) {
				n.Classes = append(n.Classes, iri)
			}
		}
	}
	sort.Strings(n.Classes)
	return n
}

// Sources returns the ultimate origins of the item: backward-lineage
// leaves with no further incoming mapping.
func (s *Service) Sources(item rdf.Term, opt Options) ([]rdf.Term, error) {
	g, err := s.Trace(item, Backward, opt)
	if err != nil {
		return nil, err
	}
	// Edges run upstream→downstream; an ultimate origin is a node that
	// nothing maps into, i.e. one that never appears as an edge target.
	// When the item has no provenance at all, the item itself is the
	// (trivial) source.
	isTarget := map[rdf.Term]bool{}
	for _, e := range g.Edges {
		isTarget[e.To] = true
	}
	var out []rdf.Term
	for term := range g.Nodes {
		if !isTarget[term] {
			out = append(out, term)
		}
	}
	sort.Slice(out, func(i, j int) bool { return rdf.Compare(out[i], out[j]) < 0 })
	return out, nil
}

// Impact returns every item that (transitively) depends on the given
// item — the "which applications are affected by this change" question
// of the paper.
func (s *Service) Impact(item rdf.Term, opt Options) ([]rdf.Term, error) {
	g, err := s.Trace(item, Forward, opt)
	if err != nil {
		return nil, err
	}
	var out []rdf.Term
	for term := range g.Nodes {
		if term != item {
			out = append(out, term)
		}
	}
	sort.Slice(out, func(i, j int) bool { return rdf.Compare(out[i], out[j]) < 0 })
	return out, nil
}

// CountPaths counts the distinct mapping paths from the item in the
// given direction (path-explosion analysis of Section V). The graph is
// expected to be acyclic — mapping chains are — and paths are counted
// with memoization, so the count itself stays cheap even when it is
// exponential in the number of stages.
func (s *Service) CountPaths(item rdf.Term, dir Direction, opt Options) (int, error) {
	view, err := s.indexedView()
	if err != nil {
		return 0, err
	}
	dict := s.st.Dict()
	rootID, ok := dict.Lookup(item)
	if !ok {
		return 0, fmt.Errorf("lineage: unknown item %s", item)
	}
	mappedID, ok := dict.Lookup(rdf.IsMappedTo)
	if !ok {
		return 0, nil
	}
	memo := map[store.ID]int{}
	onStack := map[store.ID]bool{}
	var count func(store.ID) int
	count = func(id store.ID) int {
		if n, ok := memo[id]; ok {
			return n
		}
		if onStack[id] {
			return 0 // defensive: ignore cycles
		}
		onStack[id] = true
		defer delete(onStack, id)
		var nexts []store.ID
		if dir == Backward {
			nexts = view.Subjects(mappedID, id)
		} else {
			nexts = view.Objects(id, mappedID)
		}
		if opt.RuleFilter != nil {
			var kept []store.ID
			for _, nxt := range nexts {
				var from, to store.ID
				if dir == Backward {
					from, to = nxt, id
				} else {
					from, to = id, nxt
				}
				rule, _ := s.mappingRule(view, dict, from, to)
				if opt.RuleFilter(rule) {
					kept = append(kept, nxt)
				}
			}
			nexts = kept
		}
		if len(nexts) == 0 {
			memo[id] = 1 // the path ending here
			return 1
		}
		n := 0
		for _, nxt := range nexts {
			n += count(nxt)
		}
		memo[id] = n
		return n
	}
	return count(rootID), nil
}

func (s *Service) indexedView() (*store.View, error) {
	idx := reason.IndexModelName(s.model, reason.RulebaseOWLPrime)
	if !s.st.HasModel(idx) {
		if !s.st.HasModel(s.model) {
			return nil, fmt.Errorf("lineage: no such model %q", s.model)
		}
		if _, _, err := reason.NewEngine(s.st).Materialize(s.model); err != nil {
			return nil, err
		}
	}
	return s.st.ViewOf(s.model, idx), nil
}

// Format renders a lineage graph for the terminal, one edge per line in
// topological (From → To) pairs, with rules when present — a textual
// stand-in for the Figure 7 frontend.
func Format(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s lineage of %s (%d nodes, %d edges)\n",
		g.Direction, rdf.LocalName(g.Root.Value), len(g.Nodes), len(g.Edges))
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %s -> %s", rdf.LocalName(e.From.Value), rdf.LocalName(e.To.Value))
		if e.Rule != "" {
			fmt.Fprintf(&b, "  [rule: %s]", e.Rule)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
