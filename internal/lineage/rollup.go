package lineage

import (
	"context"
	"fmt"
	"time"

	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Level is the granularity of a lineage view — the Figure 7 frontend
// lets users "adjust ... the granularity level of the information items"
// by drilling between these levels on either side of the flow.
type Level int

const (
	// LevelAttribute shows individual columns/fields (the most detailed
	// level, "data flows from attributes to attributes").
	LevelAttribute Level = iota
	// LevelRelation rolls attributes up to their table, view, or file.
	LevelRelation
	// LevelSchema rolls up to the database schema.
	LevelSchema
	// LevelApplication rolls up to the owning application.
	LevelApplication
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelRelation:
		return "relation"
	case LevelSchema:
		return "schema"
	case LevelApplication:
		return "application"
	default:
		return "attribute"
	}
}

// levelClasses lists the dm: classes that identify a container at each
// roll-up level.
func levelClasses(l Level) []string {
	switch l {
	case LevelRelation:
		return []string{rdf.DMNS + "Table", rdf.DMNS + "View", rdf.DMNS + "Source_File"}
	case LevelSchema:
		return []string{rdf.DMNS + "Schema"}
	case LevelApplication:
		return []string{rdf.DMNS + "Application"}
	default:
		return nil
	}
}

// RollupSides aggregates a lineage graph with independent granularities
// for the two sides of the Figure 7 frontend: the root's side (the
// "target objects" pane) at targetLevel and everything reached by the
// traversal (the "source objects" pane) at sourceLevel. "Any combination
// of left and right hand side is possible until the most detailed level
// is reached."
func (s *Service) RollupSides(g *Graph, sourceLevel, targetLevel Level) (*Graph, error) {
	if sourceLevel == targetLevel {
		return s.Rollup(g, sourceLevel)
	}
	view, err := s.indexedView()
	if err != nil {
		return nil, err
	}
	dict := s.st.Dict()
	levelFor := func(term rdf.Term) Level {
		if term == g.Root {
			return targetLevel
		}
		return sourceLevel
	}
	return s.rollupWith(g, view, dict, levelFor)
}

// Rollup aggregates a lineage graph to the given granularity: every node
// is replaced by its container at that level (found through the
// transitive dm:partOf closure), parallel edges collapse, and self-loops
// created by intra-container mappings disappear. Nodes with no container
// at the level keep their identity.
func (s *Service) Rollup(g *Graph, level Level) (*Graph, error) {
	return s.RollupCtx(context.Background(), g, level)
}

// RollupCtx is Rollup carrying a request context: a traced context gets
// a "lineage.rollup" child span (a standalone call starts its own
// trace).
func (s *Service) RollupCtx(ctx context.Context, g *Graph, level Level) (*Graph, error) {
	if level == LevelAttribute {
		return g, nil
	}
	sp, _ := obs.StartChildCtx(ctx, "lineage.rollup")
	sp.SetLabel("level", level.String())
	defer sp.Finish()
	view, err := s.indexedView()
	if err != nil {
		return nil, err
	}
	dict := s.st.Dict()
	return s.rollupWith(g, view, dict, func(rdf.Term) Level { return level })
}

// rollupWith is the shared roll-up machinery: levelFor chooses the
// granularity per node.
func (s *Service) rollupWith(g *Graph, view *store.View, dict *store.Dict,
	levelFor func(rdf.Term) Level) (*Graph, error) {
	defer obsRollupHist.ObserveSince(time.Now())

	typeID, _ := dict.Lookup(rdf.Type)
	partOfID, hasPartOf := dict.Lookup(rdf.IRI(rdf.MDWPartOf))
	if !hasPartOf {
		return nil, fmt.Errorf("lineage: model has no %s edges to roll up along", rdf.QName(rdf.MDWPartOf))
	}
	classIDsFor := map[Level][]store.ID{}
	resolveClassIDs := func(level Level) []store.ID {
		if ids, ok := classIDsFor[level]; ok {
			return ids
		}
		var ids []store.ID
		for _, c := range levelClasses(level) {
			if id, ok := dict.Lookup(rdf.IRI(c)); ok {
				ids = append(ids, id)
			}
		}
		classIDsFor[level] = ids
		return ids
	}

	containerOf := func(term rdf.Term) rdf.Term {
		level := levelFor(term)
		if level == LevelAttribute {
			return term
		}
		id, ok := dict.Lookup(term)
		if !ok {
			return term
		}
		// The index materializes partOf transitively, so one hop over the
		// view reaches all ancestors.
		for _, anc := range view.Objects(id, partOfID) {
			for _, cls := range resolveClassIDs(level) {
				if view.Contains(store.ETriple{S: anc, P: typeID, O: cls}) {
					return dict.Term(anc)
				}
			}
		}
		return term
	}

	out := s.newGraph(containerOf(g.Root), g.Direction)
	for term, node := range g.Nodes {
		c := containerOf(term)
		if existing, ok := out.Nodes[c]; ok {
			if node.Depth < existing.Depth {
				existing.Depth = node.Depth
			}
			continue
		}
		if cid, ok := dict.Lookup(c); ok {
			rolled := s.describe(view, dict, cid, node.Depth)
			out.Nodes[c] = rolled
		} else {
			out.Nodes[c] = &Node{IRI: c, Name: rdf.LocalName(c.Value), Depth: node.Depth}
		}
	}
	seen := map[[2]rdf.Term]bool{}
	for _, e := range g.Edges {
		from, to := containerOf(e.From), containerOf(e.To)
		if from == to {
			continue // intra-container mapping
		}
		key := [2]rdf.Term{from, to}
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Edges = append(out.Edges, Edge{From: from, To: to, Rule: e.Rule, Mapping: e.Mapping})
	}
	return out, nil
}
