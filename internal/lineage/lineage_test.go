package lineage

import (
	"strings"
	"testing"

	"mdw/internal/landscape"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/store"
)

func fixture(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	_, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(
		[]*staging.Export{landscape.Figure3Export()},
		ontology.DWH().Triples(),
	)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func pathTerm(path string) rdf.Term {
	return staging.InstanceIRI(strings.Split(path, "/")...)
}

func TestBackwardLineageFigure8(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()
	customerID := pathTerm(paths[3])

	g, err := svc.Trace(customerID, Backward, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The full chain: client_information_id → source_customer_id →
	// partner_id → customer_id.
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4: %v", len(g.Nodes), g.Nodes)
	}
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(g.Edges))
	}
	// Depths grow with distance from the root.
	if g.Nodes[customerID].Depth != 0 {
		t.Error("root depth != 0")
	}
	if g.Nodes[pathTerm(paths[0])].Depth != 3 {
		t.Errorf("origin depth = %d, want 3", g.Nodes[pathTerm(paths[0])].Depth)
	}
	// Node classes include the inherited ones (the rdf:type step of the
	// (isMappedTo)* rdf:type path).
	classes := g.Nodes[customerID].Classes
	found := false
	for _, c := range classes {
		if c == rdf.DMNS+"Attribute" {
			found = true
		}
	}
	if !found {
		t.Errorf("customer_id classes missing inherited Attribute: %v", classes)
	}
}

func TestForwardLineageImpact(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()
	origin := pathTerm(paths[0])

	impact, err := svc.Impact(origin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(impact) != 3 {
		t.Fatalf("impact = %d items, want 3: %v", len(impact), impact)
	}
}

func TestSources(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()

	srcs, err := svc.Sources(pathTerm(paths[3]), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 || srcs[0] != pathTerm(paths[0]) {
		t.Fatalf("sources = %v, want [client_information_id]", srcs)
	}
	// An item with no provenance is its own source.
	srcs, err = svc.Sources(pathTerm(paths[0]), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 || srcs[0] != pathTerm(paths[0]) {
		t.Fatalf("trivial sources = %v", srcs)
	}
}

func TestMaxDepth(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()

	g, err := svc.Trace(pathTerm(paths[3]), Backward, Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 {
		t.Fatalf("edges = %d, want 1 at depth 1", len(g.Edges))
	}
	if len(g.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(g.Nodes))
	}
}

func TestRuleConditionsOnEdges(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()

	g, err := svc.Trace(pathTerm(paths[3]), Backward, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rules := map[string]bool{}
	for _, e := range g.Edges {
		rules[e.Rule] = true
	}
	if !rules["partner is client"] || !rules["customer_id is numeric"] {
		t.Errorf("rules = %v", rules)
	}
}

func TestRuleFilterPrunesTraversal(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()

	// Only follow mappings whose rule mentions "partner": traversal stops
	// after the first hop.
	g, err := svc.Trace(pathTerm(paths[3]), Backward, Options{
		RuleFilter: func(rule string) bool { return strings.Contains(rule, "partner") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 {
		t.Fatalf("filtered edges = %d, want 1: %+v", len(g.Edges), g.Edges)
	}
	if len(g.Nodes) != 2 {
		t.Fatalf("filtered nodes = %d, want 2", len(g.Nodes))
	}
}

func TestTargetClassFilter(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()

	// Listing 2 restricts targets to Application1 items; the pb_frontend
	// column is excluded from the reported nodes (traversal still passes
	// through).
	g, err := svc.Trace(pathTerm(paths[3]), Backward, Options{
		TargetClasses: []string{rdf.DMNS + "Application1_Item"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Nodes[pathTerm(paths[0])]; ok {
		t.Error("pb_frontend column should be filtered out")
	}
	if _, ok := g.Nodes[pathTerm(paths[2])]; !ok {
		t.Error("partner_id (Application1_Table_Column) missing")
	}
}

func TestUnknownItem(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	if _, err := svc.Trace(rdf.IRI("http://nowhere/x"), Backward, Options{}); err == nil {
		t.Error("unknown item should error")
	}
	if _, err := svc.CountPaths(rdf.IRI("http://nowhere/x"), Backward, Options{}); err == nil {
		t.Error("unknown item should error in CountPaths")
	}
}

func TestMissingModel(t *testing.T) {
	svc := New(store.New(), "nope")
	if _, err := svc.Trace(rdf.IRI("http://x"), Backward, Options{}); err == nil {
		t.Error("missing model should error")
	}
}

func TestCountPathsLinear(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()
	n, err := svc.CountPaths(pathTerm(paths[3]), Backward, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("paths = %d, want 1 (linear chain)", n)
	}
}

func TestCountPathsExponentialFanIn(t *testing.T) {
	// Build a layered DAG where every node of stage i maps into every
	// node of stage i+1: the path count grows as width^(stages-1) — the
	// explosion Section V warns about.
	st := store.New()
	const width, stages = 3, 5
	node := func(s, i int) rdf.Term {
		return rdf.IRI(rdf.InstNS + "n" + string(rune('0'+s)) + "_" + string(rune('0'+i)))
	}
	for s := 0; s+1 < stages; s++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				st.Add("m", rdf.T(node(s, i), rdf.IsMappedTo, node(s+1, j)))
			}
		}
	}
	svc := New(st, "m")
	n, err := svc.CountPaths(node(stages-1, 0), Backward, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	for s := 0; s+1 < stages; s++ {
		want *= width
	}
	if n != want {
		t.Errorf("paths = %d, want %d", n, want)
	}
}

func TestCountPathsWithRuleFilter(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()
	n, err := svc.CountPaths(pathTerm(paths[3]), Backward, Options{
		RuleFilter: func(rule string) bool { return rule != "" },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first hop (source app → inbound) has no rule, so the filtered
	// path ends earlier but still exists.
	if n != 1 {
		t.Errorf("filtered paths = %d, want 1", n)
	}
}

func TestRollup(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()
	g, err := svc.Trace(pathTerm(paths[3]), Backward, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Application level: pb_frontend → application1, one edge.
	apps, err := svc.Rollup(g, LevelApplication)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps.Nodes) != 2 {
		t.Fatalf("app-level nodes = %d, want 2: %v", len(apps.Nodes), nodeNames(apps))
	}
	if len(apps.Edges) != 1 {
		t.Fatalf("app-level edges = %d, want 1: %+v", len(apps.Edges), apps.Edges)
	}

	// Relation level: client_info → customer_feed → partner → v_customer.
	rels, err := svc.Rollup(g, LevelRelation)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels.Nodes) != 4 || len(rels.Edges) != 3 {
		t.Fatalf("relation-level = %d nodes / %d edges, want 4/3: %v",
			len(rels.Nodes), len(rels.Edges), nodeNames(rels))
	}

	// Attribute level is the identity.
	same, err := svc.Rollup(g, LevelAttribute)
	if err != nil {
		t.Fatal(err)
	}
	if same != g {
		t.Error("attribute-level rollup should return the input graph")
	}
}

func nodeNames(g *Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		out = append(out, n.Name)
	}
	return out
}

func TestFormat(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()
	g, err := svc.Trace(pathTerm(paths[3]), Backward, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Format(g)
	if !strings.Contains(out, "backward lineage of customer_id") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "partner_id -> customer_id") {
		t.Errorf("edge missing:\n%s", out)
	}
	if !strings.Contains(out, "[rule: partner is client]") {
		t.Errorf("rule missing:\n%s", out)
	}
}

func TestLevelStrings(t *testing.T) {
	if LevelAttribute.String() != "attribute" || LevelRelation.String() != "relation" ||
		LevelSchema.String() != "schema" || LevelApplication.String() != "application" {
		t.Error("level names wrong")
	}
	if Backward.String() != "backward" || Forward.String() != "forward" {
		t.Error("direction names wrong")
	}
}

func TestRollupSides(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	paths := landscape.Figure3Paths()
	g, err := svc.Trace(pathTerm(paths[3]), Backward, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Sources at application level, target at attribute level — the
	// typical Figure 7 view: "which systems feed this column".
	mixed, err := svc.RollupSides(g, LevelApplication, LevelAttribute)
	if err != nil {
		t.Fatal(err)
	}
	// customer_id stays an attribute; everything upstream collapses to
	// the two applications. customer_id's own app also appears because
	// intermediate columns roll into it.
	if _, ok := mixed.Nodes[pathTerm(paths[3])]; !ok {
		t.Errorf("target not kept at attribute level: %v", nodeNames(mixed))
	}
	foundApp := false
	for term := range mixed.Nodes {
		if rdf.LocalName(term.Value) == "pb_frontend" {
			foundApp = true
		}
	}
	if !foundApp {
		t.Errorf("source side not rolled to application: %v", nodeNames(mixed))
	}

	// Equal levels delegate to the symmetric roll-up.
	same, err := svc.RollupSides(g, LevelRelation, LevelRelation)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := svc.Rollup(g, LevelRelation)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Nodes) != len(sym.Nodes) || len(same.Edges) != len(sym.Edges) {
		t.Error("RollupSides with equal levels differs from Rollup")
	}
}
