package audit

import (
	"strings"
	"testing"

	"mdw/internal/landscape"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/store"
)

func fixture(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	_, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(
		[]*staging.Export{landscape.Figure3Export()},
		ontology.DWH().Triples(),
	)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func item(path string) rdf.Term {
	return staging.InstanceIRI(strings.Split(path, "/")...)
}

func TestDirectAccess(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	// customer_id lives in application1: bob (administrator), carol
	// (business_user), and bob as owner.
	rep, err := svc.WhoCanAccess(item("application1/dwhdb/mart/v_customer/customer_id"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) != 1 || rdf.LocalName(rep.Apps[0].Value) != "application1" {
		t.Fatalf("apps = %v", rep.Apps)
	}
	users := rep.Users()
	if len(users) != 2 || users[0] != "bob" || users[1] != "carol" {
		t.Fatalf("users = %v", users)
	}
	roles := map[string]string{}
	for _, g := range rep.Grants {
		if g.Via != "owner" {
			roles[g.UserName] = g.RoleClass
		}
	}
	if roles["bob"] != "Administrator" || roles["carol"] != "Business_User" {
		t.Errorf("roles = %v", roles)
	}
}

func TestLineageExtendedAccess(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	target := item("application1/dwhdb/mart/v_customer/customer_id")

	direct, err := svc.WhoCanAccess(target, false)
	if err != nil {
		t.Fatal(err)
	}
	full, err := svc.WhoCanAccess(target, true)
	if err != nil {
		t.Fatal(err)
	}
	// The lineage audit additionally reaches pb_frontend, where alice is
	// business owner.
	if len(full.Apps) != 2 {
		t.Fatalf("full apps = %v", full.Apps)
	}
	if len(full.Users()) <= len(direct.Users()) {
		t.Errorf("lineage audit found %v, direct %v", full.Users(), direct.Users())
	}
	foundAlice := false
	for _, g := range full.Grants {
		if g.UserName == "alice" && g.Via == "lineage" || g.UserName == "alice" && g.Via == "owner" {
			foundAlice = true
		}
	}
	if !foundAlice {
		t.Errorf("alice missing from full audit: %+v", full.Grants)
	}
}

func TestOwnerGrant(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	rep, err := svc.WhoCanAccess(item("pb_frontend/pbdb/clients/client_info/client_information_id"), false)
	if err != nil {
		t.Fatal(err)
	}
	hasOwner := false
	for _, g := range rep.Grants {
		if g.Via == "owner" && g.UserName == "alice" {
			hasOwner = true
		}
	}
	if !hasOwner {
		t.Errorf("owner grant missing: %+v", rep.Grants)
	}
}

func TestApplicationItself(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	rep, err := svc.WhoCanAccess(item("application1"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) != 1 {
		t.Fatalf("apps = %v", rep.Apps)
	}
}

func TestUnknownItem(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	if _, err := svc.WhoCanAccess(rdf.IRI("http://nowhere/x"), false); err == nil {
		t.Error("unknown item should error")
	}
	if _, err := New(store.New(), "missing").WhoCanAccess(rdf.IRI("http://x"), false); err == nil {
		t.Error("missing model should error")
	}
}

func TestGrantsSorted(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	rep, err := svc.WhoCanAccess(item("application1/dwhdb/mart/v_customer/customer_id"), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Grants); i++ {
		if rep.Grants[i-1].UserName > rep.Grants[i].UserName {
			t.Fatal("grants not sorted by user")
		}
	}
}

func TestFormat(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR")
	rep, err := svc.WhoCanAccess(item("application1/dwhdb/mart/v_customer/customer_id"), true)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(rep)
	if !strings.Contains(out, "access audit for customer_id") || !strings.Contains(out, "carol") {
		t.Errorf("output:\n%s", out)
	}
}

func TestLandscapeScaleAudit(t *testing.T) {
	l := landscape.Generate(landscape.Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	svc := New(st, "m")
	rep, err := svc.WhoCanAccess(item(l.MartColumns[0]), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) < 2 {
		t.Errorf("expected at least dwh + source app, got %v", rep.Apps)
	}
}
