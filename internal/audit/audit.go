// Package audit implements the roles use case of Section II combined
// with lineage: "an auditor may want to know which applications (and
// correspondingly which roles and users) have access to a particular
// information item (e.g., the balance of a bank account of a user from
// the USA)".
//
// Access is modeled through the role subject area: an item belongs to an
// application (via the dm:partOf containment closure), roles are tied to
// applications, and users hold roles. Because data flows copy
// information between applications, the full audit also walks the
// item's lineage and reports access along every upstream and downstream
// application — the combination the paper motivates lineage with.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"mdw/internal/lineage"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/store"
)

// Grant is one (user, role, application) access relationship.
type Grant struct {
	User     rdf.Term
	UserName string
	Role     rdf.Term
	RoleName string
	// RoleClass is the dm: role class (Business_Owner, Administrator, …).
	RoleClass string
	// App is the application through which access is granted.
	App     rdf.Term
	AppName string
	// Via explains the grant: "direct" for the item's own application,
	// "owner" for the application owner, or "lineage" for access through
	// an up-/downstream application of the item's data flow.
	Via string
}

// Report is the outcome of an access audit for one item.
type Report struct {
	Item rdf.Term
	// Apps lists the applications touching the item's data: its own
	// application first, then lineage applications.
	Apps []rdf.Term
	// Grants lists every access relationship found, sorted by user.
	Grants []Grant
}

// Users returns the distinct user names with any access.
func (r *Report) Users() []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range r.Grants {
		if !seen[g.UserName] {
			seen[g.UserName] = true
			out = append(out, g.UserName)
		}
	}
	sort.Strings(out)
	return out
}

// Service answers access audits over one model.
type Service struct {
	st    *store.Store
	model string
}

// New returns an audit service for the named model of st.
func New(st *store.Store, model string) *Service {
	return &Service{st: st, model: model}
}

// WhoCanAccess reports every user/role with access to the item through
// its own application. Set includeLineage to extend the audit across the
// item's data flows (both directions), which is what an actual
// data-protection review needs.
func (s *Service) WhoCanAccess(item rdf.Term, includeLineage bool) (*Report, error) {
	view, err := s.indexedView()
	if err != nil {
		return nil, err
	}
	dict := s.st.Dict()
	itemID, ok := dict.Lookup(item)
	if !ok {
		return nil, fmt.Errorf("audit: unknown item %s", item)
	}

	rep := &Report{Item: item}
	seenApp := map[store.ID]bool{}
	addApp := func(app store.ID, via string) {
		if seenApp[app] {
			return
		}
		seenApp[app] = true
		rep.Apps = append(rep.Apps, dict.Term(app))
		rep.Grants = append(rep.Grants, s.grantsForApp(view, dict, app, via)...)
	}

	if app, ok := s.applicationOf(view, dict, itemID); ok {
		addApp(app, "direct")
	}
	if includeLineage {
		svc := lineage.New(s.st, s.model)
		for _, dir := range []lineage.Direction{lineage.Backward, lineage.Forward} {
			g, err := svc.Trace(item, dir, lineage.Options{})
			if err != nil {
				return nil, err
			}
			for term := range g.Nodes {
				if term == item {
					continue
				}
				id, ok := dict.Lookup(term)
				if !ok {
					continue
				}
				if app, ok := s.applicationOf(view, dict, id); ok {
					addApp(app, "lineage")
				}
			}
		}
	}
	sort.Slice(rep.Grants, func(i, j int) bool {
		if rep.Grants[i].UserName != rep.Grants[j].UserName {
			return rep.Grants[i].UserName < rep.Grants[j].UserName
		}
		if rep.Grants[i].RoleName != rep.Grants[j].RoleName {
			return rep.Grants[i].RoleName < rep.Grants[j].RoleName
		}
		return rep.Grants[i].AppName < rep.Grants[j].AppName
	})
	return rep, nil
}

// applicationOf resolves the application containing the node, via the
// transitive dm:partOf closure (materialized in the index) or directly
// when the node is itself an application.
func (s *Service) applicationOf(view *store.View, dict *store.Dict, id store.ID) (store.ID, bool) {
	typeID, ok := dict.Lookup(rdf.Type)
	if !ok {
		return 0, false
	}
	appClass, ok := dict.Lookup(rdf.IRI(rdf.DMNS + "Application"))
	if !ok {
		return 0, false
	}
	if view.Contains(store.ETriple{S: id, P: typeID, O: appClass}) {
		return id, true
	}
	partOfID, ok := dict.Lookup(rdf.IRI(rdf.MDWPartOf))
	if !ok {
		return 0, false
	}
	for _, anc := range view.Objects(id, partOfID) {
		if view.Contains(store.ETriple{S: anc, P: typeID, O: appClass}) {
			return anc, true
		}
	}
	return 0, false
}

// grantsForApp collects the users holding roles tied to the application,
// plus the application owner.
func (s *Service) grantsForApp(view *store.View, dict *store.Dict, app store.ID, via string) []Grant {
	var out []Grant
	appName := s.nameOf(view, dict, app)

	partOfID, _ := dict.Lookup(rdf.IRI(rdf.MDWPartOf))
	hasRoleID, _ := dict.Lookup(rdf.IRI(rdf.MDWHasRole))
	typeID, _ := dict.Lookup(rdf.Type)
	roleClass, haveRoleClass := dict.Lookup(rdf.IRI(rdf.DMNS + "Role"))
	if partOfID != store.Wildcard && hasRoleID != store.Wildcard {
		for _, role := range view.Subjects(partOfID, app) {
			// Roles sit directly partOf their application; other children
			// (databases etc.) are filtered by the Role typing.
			if haveRoleClass && !view.Contains(store.ETriple{S: role, P: typeID, O: roleClass}) {
				continue
			}
			roleName := s.nameOf(view, dict, role)
			roleCls := s.roleClassOf(view, dict, role)
			for _, user := range view.Subjects(hasRoleID, role) {
				out = append(out, Grant{
					User: dict.Term(user), UserName: s.nameOf(view, dict, user),
					Role: dict.Term(role), RoleName: roleName, RoleClass: roleCls,
					App: dict.Term(app), AppName: appName, Via: via,
				})
			}
		}
	}
	if ownedByID, ok := dict.Lookup(rdf.IRI(rdf.MDWOwnedBy)); ok {
		for _, owner := range view.Objects(app, ownedByID) {
			out = append(out, Grant{
				User: dict.Term(owner), UserName: s.nameOf(view, dict, owner),
				RoleName: "business_owner", RoleClass: "Business_Owner",
				App: dict.Term(app), AppName: appName, Via: "owner",
			})
		}
	}
	return out
}

// roleClassOf returns the most specific dm: role class local name.
func (s *Service) roleClassOf(view *store.View, dict *store.Dict, role store.ID) string {
	typeID, ok := dict.Lookup(rdf.Type)
	if !ok {
		return ""
	}
	best := ""
	for _, c := range view.Objects(role, typeID) {
		iri := dict.Term(c).Value
		if !strings.HasPrefix(iri, rdf.DMNS) {
			continue
		}
		local := rdf.LocalName(iri)
		switch local {
		case "Role", "Business_Role", "IT_Role", "Item":
			if best == "" {
				best = local
			}
		default:
			best = local
		}
	}
	return best
}

func (s *Service) nameOf(view *store.View, dict *store.Dict, id store.ID) string {
	if nameID, ok := dict.Lookup(rdf.HasName); ok {
		for _, v := range view.Objects(id, nameID) {
			return dict.Term(v).Value
		}
	}
	return rdf.LocalName(dict.Term(id).Value)
}

func (s *Service) indexedView() (*store.View, error) {
	idx := reason.IndexModelName(s.model, reason.RulebaseOWLPrime)
	if !s.st.HasModel(idx) {
		if !s.st.HasModel(s.model) {
			return nil, fmt.Errorf("audit: no such model %q", s.model)
		}
		if _, _, err := reason.NewEngine(s.st).Materialize(s.model); err != nil {
			return nil, err
		}
	}
	return s.st.ViewOf(s.model, idx), nil
}

// Format renders the report for the terminal.
func Format(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "access audit for %s\n", rdf.LocalName(r.Item.Value))
	fmt.Fprintf(&b, "  applications touching the data: %d\n", len(r.Apps))
	for _, g := range r.Grants {
		fmt.Fprintf(&b, "  %-12s %-16s on %-16s (%s, via %s)\n",
			g.UserName, g.RoleName, g.AppName, g.RoleClass, g.Via)
	}
	if len(r.Grants) == 0 {
		b.WriteString("  no role assignments found\n")
	}
	return b.String()
}
