package rescache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(4, 1<<20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", "v", 10)
	v, ok := c.Get("k")
	if !ok || v.(string) != "v" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Errorf("stats = %+v", st)
	}
	// Overwrite updates size accounting.
	c.Put("k", "w", 30)
	if c.Bytes() != 30 || c.Len() != 1 {
		t.Errorf("after overwrite: %d entries / %d bytes", c.Len(), c.Bytes())
	}
}

func TestLRUEvictionByCount(t *testing.T) {
	c := New(3, 1<<20)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1)
	}
	c.Get("k0") // promote k0; k1 is now oldest
	c.Put("k3", 3, 1)
	if _, ok := c.Get("k1"); ok {
		t.Error("LRU victim k1 survived")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s was evicted, want retained", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestEvictionByBytes(t *testing.T) {
	c := New(100, 100)
	c.Put("a", 1, 60)
	c.Put("b", 2, 60) // exceeds 100 bytes -> evict a
	if _, ok := c.Get("a"); ok {
		t.Error("byte bound did not evict oldest")
	}
	if c.Bytes() != 60 {
		t.Errorf("bytes = %d, want 60", c.Bytes())
	}
	// A value over the whole budget is refused outright.
	c.Put("huge", 3, 1000)
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized value was cached")
	}
}

func TestPeekDoesNotPromoteOrCount(t *testing.T) {
	c := New(2, 1<<20)
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	if !c.Peek("a") || c.Peek("zz") {
		t.Fatal("Peek wrong")
	}
	h, m := c.Stats().Hits, c.Stats().Misses
	if h != 0 || m != 0 {
		t.Errorf("Peek counted hits/misses: %d/%d", h, m)
	}
	// a was NOT promoted by Peek, so it is still the eviction victim.
	c.Put("c", 3, 1)
	if c.Peek("a") {
		t.Error("Peek promoted the entry")
	}
}

func TestPurgeAndDisable(t *testing.T) {
	c := New(4, 1<<20)
	c.Put("a", 1, 5)
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("after purge: %d entries / %d bytes", c.Len(), c.Bytes())
	}
	old := Default()
	defer defaultCache.Store(old)
	Disable()
	if Default() != nil {
		t.Error("Default() non-nil after Disable")
	}
	if got := Enable(8, 1024); Default() != got {
		t.Error("Enable did not install the new cache")
	}
}

func TestConcurrent(t *testing.T) {
	c := New(64, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				if v, ok := c.Get(k); ok {
					if v.(string) != k {
						t.Errorf("cache returned wrong value for %s", k)
					}
				} else {
					c.Put(k, k, int64(len(k)))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("entry bound violated: %d", c.Len())
	}
}
