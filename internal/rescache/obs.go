package rescache

import "mdw/internal/obs"

// Metric handles, resolved once at package init so Get/Put pay a single
// atomic add each — never a registry lookup.
var (
	obsHits      = obs.Default().Counter("mdw_rescache_hits_total")
	obsMisses    = obs.Default().Counter("mdw_rescache_misses_total")
	obsEvictions = obs.Default().Counter("mdw_rescache_evictions_total")
	obsEntries   = obs.Default().Gauge("mdw_rescache_entries")
	obsBytes     = obs.Default().Gauge("mdw_rescache_bytes")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_rescache_hits_total", "Query results served from the results cache.")
	r.SetHelp("mdw_rescache_misses_total", "Results-cache lookups that fell through to execution.")
	r.SetHelp("mdw_rescache_evictions_total", "Results-cache entries dropped by the LRU bounds.")
	r.SetHelp("mdw_rescache_entries", "Results-cache entries currently retained.")
	r.SetHelp("mdw_rescache_bytes", "Estimated bytes retained by the results cache.")
}
