// Package rescache is a bounded LRU cache for query results, keyed by
// strings that embed the mutation generations of every model the query
// read. Invalidation is implicit and free: any mutation bumps a model
// generation (store.Model.Gen), so the key of a stale entry simply never
// matches again and the entry ages out of the LRU.
//
// The cache stores opaque values (the SPARQL layer puts *sparql.Result
// in; keeping the package generic avoids an import cycle and lets other
// read paths reuse it). It is bounded both by entry count and by an
// estimated byte footprint the caller supplies with each Put.
package rescache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Defaults for the process-wide cache: large enough to hold every
// distinct dashboard/API query of a paper-scale deployment, small enough
// to be irrelevant next to the store itself.
const (
	DefaultMaxEntries = 1024
	DefaultMaxBytes   = 64 << 20
)

// Cache is a bounded LRU, safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type entry struct {
	key  string
	val  any
	size int64
}

// New returns a cache retaining at most maxEntries entries and maxBytes
// estimated bytes (non-positive values select the defaults).
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the value cached under key and marks it most recently
// used. The hit/miss is counted (metrics and Stats).
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		obsMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	v := el.Value.(*entry).val
	c.mu.Unlock()
	c.hits.Add(1)
	obsHits.Inc()
	return v, true
}

// Peek reports whether key is cached without promoting the entry or
// counting a hit/miss — EXPLAIN uses it to annotate plans without
// skewing statistics.
func (c *Cache) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put caches v under key with the given estimated byte size, evicting
// least-recently-used entries until both bounds hold. A value larger
// than the whole byte budget is not cached at all (it would evict
// everything for one entry).
func (c *Cache) Put(key string, v any, size int64) {
	if size < 0 {
		size = 0
	}
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.val, e.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: v, size: size})
		c.bytes += size
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldestLocked()
	}
	c.publishSizeLocked()
	c.mu.Unlock()
}

// evictOldestLocked drops the least-recently-used entry. Caller holds mu
// and guarantees the list is non-empty (both bounds are positive, so a
// just-inserted entry never loops here forever).
func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
	c.evictions.Add(1)
	obsEvictions.Inc()
}

// Purge empties the cache (operational reset; tests).
func (c *Cache) Purge() {
	c.mu.Lock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
	c.publishSizeLocked()
	c.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the estimated byte footprint of the cached values.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats is a point-in-time summary of one cache.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Stats returns the cache's counters and current size.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// publishSizeLocked mirrors the current size into the gauges. Caller
// holds mu; only entry/byte counts live here, the monotonic counters
// update lock-free at their call sites.
func (c *Cache) publishSizeLocked() {
	obsEntries.Set(int64(c.ll.Len()))
	obsBytes.Set(c.bytes)
}

// defaultCache is the process-wide results cache consulted by the SPARQL
// layer. It starts enabled with the defaults; Disable (or the mdwd
// -rescache=0 flag) turns result caching off process-wide.
var defaultCache atomic.Pointer[Cache]

func init() {
	defaultCache.Store(New(DefaultMaxEntries, DefaultMaxBytes))
}

// Default returns the process-wide cache, or nil when result caching is
// disabled.
func Default() *Cache {
	return defaultCache.Load()
}

// Enable installs a fresh process-wide cache with the given bounds
// (non-positive values select the defaults) and returns it.
func Enable(maxEntries int, maxBytes int64) *Cache {
	c := New(maxEntries, maxBytes)
	defaultCache.Store(c)
	return c
}

// Disable turns the process-wide cache off: Default returns nil until
// Enable is called again.
func Disable() {
	defaultCache.Store(nil)
	obsEntries.Set(0)
	obsBytes.Set(0)
}
