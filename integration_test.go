package mdw

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mdw/internal/core"
	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/metamodel"
	"mdw/internal/rdf"
	"mdw/internal/relstore"
	"mdw/internal/search"
	"mdw/internal/staging"
	"mdw/internal/store"
)

// buildSmall loads a small landscape into a fresh warehouse.
func buildSmall(t *testing.T) (*core.Warehouse, *landscape.Landscape) {
	t.Helper()
	l := landscape.Generate(landscape.Small())
	w := core.New("")
	if _, err := w.LoadOntology(l.Ontology); err != nil {
		t.Fatal(err)
	}
	if _, err := w.LoadExports(l.Exports); err != nil {
		t.Fatal(err)
	}
	w.LoadTriples(l.ExtraTriples())
	return w, l
}

// TestEveryChainIsTraceable verifies the generator's ground truth against
// the lineage service: every generated mapping chain must be recoverable
// by backward lineage from its mart column.
func TestEveryChainIsTraceable(t *testing.T) {
	w, l := buildSmall(t)
	svc := w.LineageService()
	for _, chain := range l.Chains {
		target := staging.InstanceIRI(strings.Split(chain[len(chain)-1], "/")...)
		g, err := svc.Trace(target, lineage.Backward, lineage.Options{})
		if err != nil {
			t.Fatalf("trace %v: %v", chain, err)
		}
		for _, hop := range chain {
			node := staging.InstanceIRI(strings.Split(hop, "/")...)
			if _, ok := g.Nodes[node]; !ok {
				t.Fatalf("chain hop %s missing from lineage of %s", hop, chain[len(chain)-1])
			}
		}
		// And the origin is reported as a source.
		srcs, err := svc.Sources(target, lineage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		origin := staging.InstanceIRI(strings.Split(chain[0], "/")...)
		found := false
		for _, s := range srcs {
			if s == origin {
				found = true
			}
		}
		if !found {
			t.Fatalf("origin %s not among sources %v", chain[0], srcs)
		}
	}
}

// TestSearchSupersetOfRelationalLike: the graph search (with inheritance
// and concepts) must find at least everything a flat LIKE over column
// names finds.
func TestSearchSupersetOfRelationalLike(t *testing.T) {
	w, l := buildSmall(t)
	c, err := relstore.NewTextbook()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadExports(l.Exports); err != nil {
		t.Fatal(err)
	}
	for _, term := range []string{"customer", "account", "risk", "balance"} {
		rows, err := c.SearchColumns(term)
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Search(term, search.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances < len(rows) {
			t.Errorf("term %q: graph found %d, relational LIKE found %d", term, res.Instances, len(rows))
		}
	}
}

// TestCensusConsistency: the Table I census must account for every triple
// exactly once and every node exactly once.
func TestCensusConsistency(t *testing.T) {
	w, _ := buildSmall(t)
	cs := w.Census()
	if cs.Total != w.Store().Len(w.Model()) {
		t.Errorf("census total %d != model size %d", cs.Total, w.Store().Len(w.Model()))
	}
	cells := 0
	for _, n := range cs.Cells {
		cells += n
	}
	if cells != cs.Total {
		t.Errorf("cell sum %d != total %d", cells, cs.Total)
	}
	catSum := 0
	for _, n := range cs.Edges {
		catSum += n
	}
	if catSum != cs.Total {
		t.Errorf("category sum %d != total %d", catSum, cs.Total)
	}
}

// TestIndexedQueriesMatchOntologyClosure: for every mart column, the set
// of classes reported by the entailment index equals the ontology's
// superclass closure of its direct class.
func TestIndexedQueriesMatchOntologyClosure(t *testing.T) {
	w, l := buildSmall(t)
	if _, err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	st := w.Store()
	idxView := st.ViewOf(w.Model(), w.Model()+"$OWLPRIME")
	dict := st.Dict()
	typeID, _ := dict.Lookup(rdf.Type)

	for _, mc := range l.MartColumns[:5] {
		node := staging.InstanceIRI(strings.Split(mc, "/")...)
		id, ok := dict.Lookup(node)
		if !ok {
			t.Fatalf("mart column %s not in dictionary", mc)
		}
		got := map[string]bool{}
		for _, cls := range idxView.Objects(id, typeID) {
			iri := dict.Term(cls).Value
			if strings.HasPrefix(iri, rdf.DMNS) {
				got[iri] = true
			}
		}
		direct := rdf.DMNS + "Dwh_View_Column"
		want := map[string]bool{direct: true}
		for _, s := range l.Ontology.Superclasses(direct) {
			want[s] = true
		}
		for iri := range want {
			if !got[iri] {
				t.Errorf("%s: missing inferred class %s", mc, rdf.LocalName(iri))
			}
		}
		for iri := range got {
			if !want[iri] {
				t.Errorf("%s: unexpected class %s", mc, rdf.LocalName(iri))
			}
		}
	}
}

// TestWarehouseDumpPreservesBehaviour: a save/restore cycle must preserve
// search and lineage results exactly.
func TestWarehouseDumpPreservesBehaviour(t *testing.T) {
	w, l := buildSmall(t)
	w.IntegrateDBpedia(dbpedia.Banking())
	if _, err := w.Snapshot("R1", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.ReadFrom(&buf, "")
	if err != nil {
		t.Fatal(err)
	}

	for _, term := range []string{"customer", "portfolio"} {
		a, err := w.Search(term, search.Options{Semantic: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Search(term, search.Options{Semantic: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Instances != b.Instances || len(a.Groups) != len(b.Groups) {
			t.Errorf("term %q: %d/%d vs %d/%d", term, a.Instances, len(a.Groups), b.Instances, len(b.Groups))
		}
	}
	target := staging.InstanceIRI(strings.Split(l.MartColumns[0], "/")...)
	ga, err := w.Lineage(target, lineage.Backward, lineage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := back.Lineage(target, lineage.Backward, lineage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ga.Nodes) != len(gb.Nodes) || len(ga.Edges) != len(gb.Edges) {
		t.Errorf("lineage differs after restore: %d/%d vs %d/%d",
			len(ga.Nodes), len(ga.Edges), len(gb.Nodes), len(gb.Edges))
	}
}

// TestHistorizationAcrossLoads: releases capture graph evolution; diffs
// between consecutive versions are exactly the loaded deltas.
func TestHistorizationAcrossLoads(t *testing.T) {
	w, _ := buildSmall(t)
	base := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := w.Snapshot("R1", base); err != nil {
		t.Fatal(err)
	}
	delta := []rdf.Triple{
		rdf.T(rdf.IRI(rdf.InstNS+"newapp"), rdf.Type, rdf.IRI(rdf.DMNS+"Application")),
		rdf.T(rdf.IRI(rdf.InstNS+"newapp"), rdf.HasName, rdf.Literal("newapp")),
	}
	if n := w.LoadTriples(delta); n != 2 {
		t.Fatalf("loaded %d", n)
	}
	if _, err := w.Snapshot("R2", base.AddDate(0, 2, 0)); err != nil {
		t.Fatal(err)
	}
	d, err := w.History().DiffVersions(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 2 || len(d.Removed) != 0 {
		t.Errorf("diff = +%d/-%d, want +2/-0", len(d.Added), len(d.Removed))
	}
	v, err := w.History().AsOf(base.AddDate(0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v.Number != 1 {
		t.Errorf("AsOf mid-cycle = v%d", v.Number)
	}
}

// TestValidationOnGeneratedLandscape: the generator must produce a graph
// free of convention violations (every instance typed, every class
// labeled).
func TestValidationOnGeneratedLandscape(t *testing.T) {
	w, _ := buildSmall(t)
	issues := w.Validate()
	byCode := map[string][]metamodel.Issue{}
	for _, is := range issues {
		byCode[is.Code] = append(byCode[is.Code], is)
	}
	for _, code := range []string{"untyped-instance", "unlabeled-class", "literal-subject"} {
		if n := len(byCode[code]); n != 0 {
			t.Errorf("%s: %d issues, first: %v", code, n, byCode[code][0])
		}
	}
}

// TestViewIsolationAcrossModels: the paper's semantics — facts-only
// queries never see index triples, and models are fully isolated.
func TestViewIsolationAcrossModels(t *testing.T) {
	w, l := buildSmall(t)
	if _, err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	st := w.Store()
	base := st.Len(w.Model())
	idx := st.Len(w.Model() + "$OWLPRIME")
	if idx == 0 {
		t.Fatal("no index triples")
	}
	// No triple may live in both models.
	overlap := 0
	st.ForEach(w.Model()+"$OWLPRIME", rdf.Term{}, rdf.Term{}, rdf.Term{}, func(tr rdf.Triple) bool {
		if st.Contains(w.Model(), tr) {
			overlap++
		}
		return true
	})
	if overlap != 0 {
		t.Errorf("%d triples duplicated between base and index", overlap)
	}
	// The union view sees exactly base+idx.
	v := st.ViewOf(w.Model(), w.Model()+"$OWLPRIME")
	if v.Len() != base+idx {
		t.Errorf("view = %d, want %d", v.Len(), base+idx)
	}
	_ = l
}

// TestConcurrentSearches: the warehouse must serve parallel readers.
func TestConcurrentSearches(t *testing.T) {
	w, _ := buildSmall(t)
	if _, err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	terms := []string{"customer", "account", "risk", "trade", "portfolio", "fee"}
	errc := make(chan error, len(terms)*4)
	for i := 0; i < 4; i++ {
		for _, term := range terms {
			go func(term string) {
				_, err := w.Search(term, search.Options{})
				errc <- err
			}(term)
		}
	}
	for i := 0; i < len(terms)*4; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreDumpAtScale: dump/restore round-trips the whole multi-model
// store byte-for-content.
func TestStoreDumpAtScale(t *testing.T) {
	w, _ := buildSmall(t)
	if _, err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Store().WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := store.ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range w.Store().ModelNames() {
		if back.Len(m) != w.Store().Len(m) {
			t.Errorf("model %s: %d vs %d", m, back.Len(m), w.Store().Len(m))
		}
	}
}

// TestPaperScalePipeline loads the full paper-scale landscape (~130k
// nodes) end to end and checks the published shape claims. Skipped in
// -short mode: it takes tens of seconds.
func TestPaperScalePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale load is slow; run without -short")
	}
	l := landscape.Generate(landscape.PaperScale())
	st := store.New()
	stats, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(l.Exports, l.Ontology.Triples())
	if err != nil {
		t.Fatal(err)
	}
	st.AddAll("DWH_CURR", l.ExtraTriples())
	cs, _ := metamodel.TakeCensus(st.ViewOf("DWH_CURR"), st.Dict())

	// Section III.A: ~130,000 nodes per version.
	if cs.NodeTotal() < 110_000 || cs.NodeTotal() > 150_000 {
		t.Errorf("nodes = %d, want ~130k", cs.NodeTotal())
	}
	// Total edges (facts + derived index) on the order of a million.
	total := cs.Total + stats.Derived
	if total < 700_000 {
		t.Errorf("total edges = %d, want on the order of 1M", total)
	}
	// The services stay responsive at scale.
	svc := search.New(st, "DWH_CURR", nil)
	res, err := svc.Search("customer", search.Options{MaxHitsPerGroup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances == 0 {
		t.Error("paper-scale search found nothing")
	}
	lsvc := lineage.New(st, "DWH_CURR")
	target := staging.InstanceIRI(strings.Split(l.MartColumns[0], "/")...)
	g, err := lsvc.Trace(target, lineage.Backward, lineage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != l.Config.Stages+1 {
		t.Errorf("paper-scale lineage nodes = %d", len(g.Nodes))
	}
}
