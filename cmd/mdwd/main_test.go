package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"mdw/internal/httpapi"
)

func TestBuildWarehouseDefault(t *testing.T) {
	w, mgr, err := buildWarehouse("", "", "", "", "interval", 0)
	if err != nil {
		t.Fatal(err)
	}
	if mgr != nil {
		t.Error("ephemeral mode returned a durability manager")
	}
	if w.Stats().Triples == 0 {
		t.Error("default warehouse empty")
	}
}

func TestBuildWarehouseScale(t *testing.T) {
	w, _, err := buildWarehouse("", "", "small", "", "interval", 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Triples < 1000 {
		t.Errorf("small landscape too small: %d", w.Stats().Triples)
	}
	if _, _, err := buildWarehouse("", "", "bogus", "", "interval", 0); err == nil {
		t.Error("bad scale should error")
	}
}

func TestBuildWarehouseFromDump(t *testing.T) {
	w, _, err := buildWarehouse("", "", "", "", "interval", 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wh.mdw")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	back, _, err := buildWarehouse("", path, "", "", "interval", 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats().Triples != w.Stats().Triples {
		t.Error("dump round trip lost triples")
	}
	if _, _, err := buildWarehouse("", "/no/such/file", "", "", "interval", 0); err == nil {
		t.Error("missing dump should error")
	}
}

// TestBuildWarehouseDurable exercises the -data-dir path end to end:
// seed an empty directory with the built-in example, checkpoint over
// HTTP, reopen, and require the identical graph — with the seeding flags
// ignored on the second start.
func TestBuildWarehouseDurable(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := buildWarehouse("", "dump.mdw", "", dir, "interval", 0); err == nil ||
		!strings.Contains(err.Error(), "-wh") {
		t.Errorf("-wh with -data-dir not rejected: %v", err)
	}
	if _, _, err := buildWarehouse("", "", "", dir, "sometimes", 0); err == nil {
		t.Error("bad fsync policy not rejected")
	}

	w, mgr, err := buildWarehouse("", "", "", dir, "none", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Stats().Triples
	if want == 0 {
		t.Fatal("durable warehouse not seeded")
	}

	api := httpapi.NewServer(w)
	api.SetDurable(mgr)
	srv := httptest.NewServer(api)
	resp, err := srv.Client().Post(srv.URL+"/api/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cp struct {
		LSN     uint64 `json:"lsn"`
		Triples int    `json:"triples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusOK || cp.Triples == 0 {
		t.Fatalf("checkpoint: status %d, stats %+v", resp.StatusCode, cp)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: -scale would reseed an empty store, but the directory is
	// populated, so it must be ignored.
	w2, mgr2, err := buildWarehouse("", "", "small", dir, "none", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if got := w2.Stats().Triples; got != want {
		t.Errorf("recovered %d triples, want %d", got, want)
	}
	if mgr2.Recovery().SnapshotLSN != cp.LSN {
		t.Errorf("recovery used snapshot LSN %d, checkpoint wrote %d", mgr2.Recovery().SnapshotLSN, cp.LSN)
	}
}

// TestCheckpointWithoutDurability documents the 503 contract of
// POST /api/checkpoint on an ephemeral server.
func TestCheckpointWithoutDurability(t *testing.T) {
	w, _, err := buildWarehouse("", "", "", "", "interval", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewServer(w))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/api/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

func TestServerEndToEnd(t *testing.T) {
	w, _, err := buildWarehouse("", "", "", "", "interval", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewServer(w))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
