package main

import (
	"net/http/httptest"
	"path/filepath"
	"testing"

	"mdw/internal/httpapi"
)

func TestBuildWarehouseDefault(t *testing.T) {
	w, err := buildWarehouse("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Triples == 0 {
		t.Error("default warehouse empty")
	}
}

func TestBuildWarehouseScale(t *testing.T) {
	w, err := buildWarehouse("", "", "small")
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Triples < 1000 {
		t.Errorf("small landscape too small: %d", w.Stats().Triples)
	}
	if _, err := buildWarehouse("", "", "bogus"); err == nil {
		t.Error("bad scale should error")
	}
}

func TestBuildWarehouseFromDump(t *testing.T) {
	w, err := buildWarehouse("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wh.mdw")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := buildWarehouse("", path, "")
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats().Triples != w.Stats().Triples {
		t.Error("dump round trip lost triples")
	}
	if _, err := buildWarehouse("", "/no/such/file", ""); err == nil {
		t.Error("missing dump should error")
	}
}

func TestServerEndToEnd(t *testing.T) {
	w, err := buildWarehouse("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewServer(w))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
