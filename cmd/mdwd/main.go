// Command mdwd serves the meta-data warehouse over HTTP: the JSON API
// and the single-page frontend that reproduce the paper's search and
// provenance screens (Figures 6 and 7).
//
// Usage:
//
//	mdwd [-addr :8080] [-data DIR | -wh DUMP] [-data-dir DIR]
//	     [-fsync always|interval|none] [-checkpoint-every 5m]
//	     [-slow-query 250ms] [-rescache N] [-rescache-bytes B]
//	     [-misest-threshold 8] [-pprof]
//
// Without -data/-wh the server hosts the built-in Figure 3 example.
// With -data-dir the warehouse is durable: every mutation is
// write-ahead logged to the directory, checkpoints condense the log
// into binary snapshots (periodically via -checkpoint-every, or on
// demand via POST /api/checkpoint), and a restart recovers the exact
// pre-crash state from the newest snapshot plus the WAL tail. On a
// fresh (empty) data directory the usual seeding flags apply once;
// afterwards the directory itself is the source of truth and -data and
// -scale are ignored.
// Metrics are served at /api/metrics (Prometheus text exposition,
// including runtime gauges refreshed by a background sampler), recent
// traces plus the slow-query log at /api/traces (every response carries
// its trace ID in X-Mdw-Trace), and per-fingerprint query statistics at
// /api/statements. GET /api/query?...&analyze=1 executes with
// operator-level instrumentation and returns the runtime statistics
// tree alongside the results; analyzed executions whose worst operator
// estimate is off by -misest-threshold land in GET /api/misestimates.
// /healthz answers 200 as soon as the process serves (liveness);
// /readyz answers 503 with the blocking startup stage until recovery
// and index builds finish, then 200 (readiness). -pprof additionally
// mounts the net/http/pprof profiling handlers under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mdw/internal/core"
	"mdw/internal/dbpedia"
	"mdw/internal/durable"
	"mdw/internal/httpapi"
	"mdw/internal/landscape"
	"mdw/internal/obs"
	"mdw/internal/ontology"
	"mdw/internal/rescache"
	"mdw/internal/sparql"
	"mdw/internal/staging"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "data directory written by `mdw generate`")
	dump := flag.String("wh", "", "warehouse dump written by core.Warehouse.Save")
	scale := flag.String("scale", "", "serve a freshly generated landscape: small or paper")
	dataDir := flag.String("data-dir", "", "durable data directory (write-ahead log + snapshots); recovered on start")
	fsync := flag.String("fsync", string(durable.FsyncInterval), "WAL fsync policy: always, interval, or none")
	ckptEvery := flag.Duration("checkpoint-every", 5*time.Minute, "background checkpoint period with -data-dir (0 disables)")
	slow := flag.Duration("slow-query", obs.DefaultSlowQueryThreshold,
		"log queries slower than this to /api/traces (0s = every query, <0 = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	parallelism := flag.Int("parallelism", sparql.MaxParallelism(),
		"max workers per query (default GOMAXPROCS, or MDW_PARALLELISM; 1 = serial execution)")
	rcEntries := flag.Int("rescache", rescache.DefaultMaxEntries,
		"max entries in the generation-keyed results cache (0 disables it)")
	rcBytes := flag.Int64("rescache-bytes", rescache.DefaultMaxBytes,
		"byte budget of the results cache")
	misestThr := flag.Float64("misest-threshold", sparql.DefaultMisestimateThreshold,
		"report analyzed executions whose worst operator estimate is off by this factor (GET /api/misestimates)")
	flag.Parse()
	obs.DefaultSlowLog().SetThreshold(*slow)
	sparql.SetMaxParallelism(*parallelism)
	sparql.SetMisestimateThreshold(*misestThr)
	if *rcEntries <= 0 {
		rescache.Disable()
	} else {
		rescache.Enable(*rcEntries, *rcBytes)
	}

	// Reserve the port before the (possibly long) durable recovery and
	// index builds: probes connecting during startup queue in the listen
	// backlog and get an honest not-ready answer the moment serving
	// begins, instead of connection-refused flapping.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdwd:", err)
		os.Exit(1)
	}
	w, mgr, err := buildWarehouse(*data, *dump, *scale, *dataDir, *fsync, *ckptEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdwd:", err)
		os.Exit(1)
	}
	stop := obs.StartRuntimeSampler(0)
	defer stop()
	srv := httpapi.NewServer(w)
	if mgr != nil {
		srv.SetDurable(mgr)
		// Flush the WAL (and stop the background loops) on SIGINT/SIGTERM
		// so an orderly shutdown loses nothing even under -fsync interval.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			log.Printf("shutting down, closing WAL")
			if err := mgr.Close(); err != nil {
				log.Printf("WAL close: %v", err)
			}
			os.Exit(0)
		}()
	}
	if *pprofOn {
		srv.MountPprof()
		log.Printf("pprof enabled at /debug/pprof/")
	}

	// Serve immediately — /healthz answers 200 and /readyz 503 with the
	// blocking stage — and run the remaining startup work (entailment
	// index, text index) with the listener live. /readyz flips to 200
	// when the warehouse can answer queries at full speed; queries
	// arriving earlier still work, they just pay the on-demand builds.
	var ready atomic.Bool
	var stage atomic.Value
	stage.Store("building entailment index")
	srv.SetReadiness(func() (bool, string) {
		if ready.Load() {
			return true, ""
		}
		reason, _ := stage.Load().(string)
		return false, reason
	})
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		errc <- http.Serve(ln, srv)
	}()

	// Materialize the entailment index up front so the first query is
	// fast — unless recovery already brought back a current one, in which
	// case rebuilding would only bloat the WAL with an identical index.
	if !w.Stats().IndexCurrent {
		if _, err := w.Reindex(); err != nil {
			fmt.Fprintln(os.Stderr, "mdwd:", err)
			os.Exit(1)
		}
	}
	stage.Store("building text index")
	if _, err := w.TextIndex(); err != nil {
		fmt.Fprintln(os.Stderr, "mdwd:", err)
		os.Exit(1)
	}
	ready.Store(true)

	s := w.Stats()
	log.Printf("serving model %s (%d base + %d derived triples) on %s, ready",
		s.Model, s.Triples, s.Derived, ln.Addr())
	err = <-errc
	wg.Wait()
	fmt.Fprintln(os.Stderr, "mdwd:", err)
	os.Exit(1)
}

func buildWarehouse(dataDir, dump, scale, durableDir, fsync string, ckptEvery time.Duration) (*core.Warehouse, *durable.Manager, error) {
	if durableDir == "" {
		w, err := buildEphemeral(dataDir, dump, scale)
		return w, nil, err
	}
	if dump != "" {
		return nil, nil, fmt.Errorf("-wh cannot be combined with -data-dir (the data directory is the source of truth)")
	}
	policy, err := durable.ParseFsyncPolicy(fsync)
	if err != nil {
		return nil, nil, err
	}
	w, mgr, err := core.OpenDurable("", durable.Options{
		Dir:             durableDir,
		Fsync:           policy,
		CheckpointEvery: ckptEvery,
		Logf:            log.Printf,
	})
	if err != nil {
		return nil, nil, err
	}
	rec := mgr.Recovery()
	log.Printf("durable: recovered %d models / %d triples from %s (snapshot LSN %d, %d WAL records replayed) in %s",
		rec.Models, rec.Triples, durableDir, rec.SnapshotLSN, rec.ReplayedRecords, rec.Duration.Round(time.Millisecond))
	if rec.TornTail != "" {
		log.Printf("durable: torn WAL tail truncated: %s", rec.TornTail)
	}
	if w.Stats().Triples > 0 {
		if dataDir != "" || scale != "" {
			log.Printf("durable: data directory already populated; ignoring -data/-scale")
		}
		return w, mgr, nil
	}
	if err := seedWarehouse(w, dataDir, scale); err != nil {
		mgr.Close()
		return nil, nil, err
	}
	return w, mgr, nil
}

// buildEphemeral constructs the in-memory warehouse of the pre-durability
// modes: from a dump, a generated landscape, a data directory, or the
// built-in example.
func buildEphemeral(dataDir, dump, scale string) (*core.Warehouse, error) {
	if dump != "" {
		return core.Open(dump, "")
	}
	w := core.New("")
	if err := seedWarehouse(w, dataDir, scale); err != nil {
		return nil, err
	}
	return w, nil
}

// seedWarehouse populates an empty warehouse from -scale, -data, or the
// built-in Figure 3 example (in that precedence).
func seedWarehouse(w *core.Warehouse, dataDir, scale string) error {
	switch {
	case scale != "":
		var cfg landscape.Config
		switch scale {
		case "small":
			cfg = landscape.Small()
		case "paper":
			cfg = landscape.PaperScale()
		default:
			return fmt.Errorf("unknown scale %q", scale)
		}
		l := landscape.Generate(cfg)
		if _, err := w.LoadOntology(l.Ontology); err != nil {
			return err
		}
		if _, err := w.LoadExports(l.Exports); err != nil {
			return err
		}
		w.LoadTriples(l.ExtraTriples())
		w.IntegrateDBpedia(dbpedia.Banking())
		return nil
	case dataDir != "":
		return core.LoadDirInto(w, dataDir)
	default:
		if _, err := w.LoadOntology(ontology.DWH()); err != nil {
			return err
		}
		if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
			return err
		}
		w.IntegrateDBpedia(dbpedia.Banking())
		return nil
	}
}
