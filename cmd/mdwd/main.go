// Command mdwd serves the meta-data warehouse over HTTP: the JSON API
// and the single-page frontend that reproduce the paper's search and
// provenance screens (Figures 6 and 7).
//
// Usage:
//
//	mdwd [-addr :8080] [-data DIR | -wh DUMP] [-slow-query 250ms] [-pprof]
//
// Without -data/-wh the server hosts the built-in Figure 3 example.
// Metrics are served at /api/metrics (Prometheus text exposition,
// including runtime gauges refreshed by a background sampler), recent
// traces plus the slow-query log at /api/traces (every response carries
// its trace ID in X-Mdw-Trace), and per-fingerprint query statistics at
// /api/statements. -pprof additionally mounts the net/http/pprof
// profiling handlers under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"mdw/internal/core"
	"mdw/internal/dbpedia"
	"mdw/internal/httpapi"
	"mdw/internal/landscape"
	"mdw/internal/obs"
	"mdw/internal/ontology"
	"mdw/internal/staging"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "data directory written by `mdw generate`")
	dump := flag.String("wh", "", "warehouse dump written by core.Warehouse.Save")
	scale := flag.String("scale", "", "serve a freshly generated landscape: small or paper")
	slow := flag.Duration("slow-query", obs.DefaultSlowQueryThreshold,
		"log queries slower than this to /api/traces (0s = every query, <0 = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	flag.Parse()
	obs.DefaultSlowLog().SetThreshold(*slow)

	w, err := buildWarehouse(*data, *dump, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdwd:", err)
		os.Exit(1)
	}
	if _, err := w.Reindex(); err != nil {
		fmt.Fprintln(os.Stderr, "mdwd:", err)
		os.Exit(1)
	}
	stop := obs.StartRuntimeSampler(0)
	defer stop()
	srv := httpapi.NewServer(w)
	if *pprofOn {
		srv.MountPprof()
		log.Printf("pprof enabled at /debug/pprof/")
	}
	s := w.Stats()
	log.Printf("serving model %s (%d base + %d derived triples) on %s",
		s.Model, s.Triples, s.Derived, *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "mdwd:", err)
		os.Exit(1)
	}
}

func buildWarehouse(dataDir, dump, scale string) (*core.Warehouse, error) {
	switch {
	case dump != "":
		return core.Open(dump, "")
	case scale != "":
		var cfg landscape.Config
		switch scale {
		case "small":
			cfg = landscape.Small()
		case "paper":
			cfg = landscape.PaperScale()
		default:
			return nil, fmt.Errorf("unknown scale %q", scale)
		}
		l := landscape.Generate(cfg)
		w := core.New("")
		if _, err := w.LoadOntology(l.Ontology); err != nil {
			return nil, err
		}
		if _, err := w.LoadExports(l.Exports); err != nil {
			return nil, err
		}
		w.LoadTriples(l.ExtraTriples())
		w.IntegrateDBpedia(dbpedia.Banking())
		return w, nil
	case dataDir != "":
		return core.LoadDir(dataDir)
	default:
		w := core.New("")
		if _, err := w.LoadOntology(ontology.DWH()); err != nil {
			return nil, err
		}
		if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
			return nil, err
		}
		w.IntegrateDBpedia(dbpedia.Banking())
		return w, nil
	}
}
