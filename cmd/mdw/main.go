// Command mdw is the meta-data warehouse command-line frontend: it
// generates synthetic landscapes, loads meta-data through the Figure 4
// pipeline, and exposes the paper's services — search (Section IV.A),
// lineage (Section IV.B), SPARQL / SEM_MATCH queries, and the Table I
// census reports.
//
// Usage:
//
//	mdw generate     -scale small|paper -out DIR   write XML exports + ontology
//	mdw search       [-data DIR] [flags] TERM      search the graph (§IV.A)
//	mdw index        [-data DIR] [flags]           build/inspect the full-text index
//	mdw lineage      [-data DIR] [flags] ITEM      trace provenance (§IV.B)
//	mdw query        [-data DIR] [-explain] 'SPARQL'
//	mdw explain      [-data DIR] [-analyze] 'SPARQL'|'SEM_MATCH(...)'  print (or run and annotate) the plan
//	mdw semmatch     [-data DIR] 'SEM_MATCH(...)'  Oracle-style call (Listings 1/2)
//	mdw audit        [-data DIR] ITEM              who can access the item
//	mdw impact       [-wh DUMP] -from N -to M      release change impact
//	mdw stats        [-data DIR] [-validate]       census + validation
//	mdw learn-schema [-data DIR] [-migrate]        §VII schema learning
//	mdw metrics      [-data DIR] [-slow-query D]   workload + Prometheus metrics dump
//	mdw top          [-data DIR | -url URL] [-n N] [-misest] per-statement query statistics
//	mdw checkpoint   [-url URL]                    force a durability checkpoint on a running mdwd
//	mdw clone        [-data DIR | -url URL] [-src MODEL] DST  copy-on-write model clone
//	mdw report       table1|subjects|scale|figure6|figure7|growth
//
// Without -data, commands operate on the built-in Figure 3 example
// landscape, so every command works out of the box.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	neturl "net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mdw/internal/audit"
	"mdw/internal/core"
	"mdw/internal/dbpedia"
	"mdw/internal/impact"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/ntriples"
	"mdw/internal/obs"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/relstore"
	"mdw/internal/schemalearn"
	"mdw/internal/search"
	"mdw/internal/semmatch"
	"mdw/internal/sparql"
	"mdw/internal/staging"
	"mdw/internal/textindex"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdw:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "generate":
		return cmdGenerate(rest)
	case "search":
		return cmdSearch(rest)
	case "index":
		return cmdIndex(rest)
	case "lineage":
		return cmdLineage(rest)
	case "query":
		return cmdQuery(rest)
	case "explain":
		return cmdExplain(rest)
	case "semmatch":
		return cmdSemMatch(rest)
	case "audit":
		return cmdAudit(rest)
	case "impact":
		return cmdImpact(rest)
	case "stats":
		return cmdStats(rest)
	case "learn-schema":
		return cmdLearnSchema(rest)
	case "metrics":
		return cmdMetrics(rest)
	case "top":
		return cmdTop(rest)
	case "checkpoint":
		return cmdCheckpoint(rest)
	case "clone":
		return cmdClone(rest)
	case "report":
		return cmdReport(rest)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mdw <command> [flags] [args]

commands:
  generate   write a synthetic landscape (XML exports + ontology) to a directory
  search     search the meta-data graph for a term (Section IV.A)
  index      build the inverted full-text search index and inspect its vocabulary
  lineage    trace the lineage of an information item (Section IV.B)
  query      run a SPARQL query against the graph
  explain    print the evaluation plan of a SPARQL query or SEM_MATCH call
  semmatch   run an Oracle-style SEM_MATCH call (Listings 1 and 2)
  audit      report which users and roles can access an information item
  impact     analyze the downstream impact of changes between two releases
  stats        print graph statistics, the Table I census, and validation issues
  learn-schema derive a relational schema from the evolved graph (Section VII)
  metrics      run a sample workload and dump the collected metrics (Prometheus text)
  top          show per-statement query statistics, heaviest total time first
  checkpoint   force a durability checkpoint on a running mdwd (-data-dir mode)
  clone        clone a model copy-on-write under a new name (locally or on a running mdwd)
  report       reproduce a paper artifact: table1, subjects, scale, figure6, figure7`)
}

// cmdGenerate writes a landscape to disk.
func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	scale := fs.String("scale", "small", "landscape scale: small or paper")
	out := fs.String("out", "mdw-data", "output directory")
	seed := fs.Int64("seed", 0, "override the generator seed (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := scaleConfig(*scale)
	if err != nil {
		return err
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	l := landscape.Generate(cfg)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, e := range l.Exports {
		doc, err := e.Encode()
		if err != nil {
			return err
		}
		name := filepath.Join(*out, staging.Slug(e.Source)+".xml")
		if err := os.WriteFile(name, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", name)
	}
	ont := filepath.Join(*out, "ontology.ttl")
	if err := os.WriteFile(ont, []byte(l.Ontology.Turtle()), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", ont)
	if extra := l.ExtraTriples(); len(extra) > 0 {
		nt := filepath.Join(*out, "auxiliary.nt")
		if err := os.WriteFile(nt, []byte(ntriples.Marshal(extra)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", nt)
	}
	dbp := filepath.Join(*out, "dbpedia.nt")
	if err := os.WriteFile(dbp, []byte(ntriples.Marshal(dbpedia.Banking())), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", dbp)
	fmt.Printf("generated %d mapping chains across %d source applications\n",
		len(l.Chains), cfg.SourceApps)
	return nil
}

func scaleConfig(scale string) (landscape.Config, error) {
	switch scale {
	case "small":
		return landscape.Small(), nil
	case "paper":
		return landscape.PaperScale(), nil
	default:
		return landscape.Config{}, fmt.Errorf("unknown scale %q (want small or paper)", scale)
	}
}

// buildWarehouse loads a warehouse either from a data directory written
// by `mdw generate` or from the built-in Figure 3 example.
func buildWarehouse(dataDir string) (*core.Warehouse, error) {
	w := core.New("")
	if dataDir == "" {
		if _, err := w.LoadOntology(ontology.DWH()); err != nil {
			return nil, err
		}
		if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
			return nil, err
		}
		w.IntegrateDBpedia(dbpedia.Banking())
		return w, nil
	}
	return core.LoadDir(dataDir)
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	classes := fs.String("class", "", "comma-separated class local names (dm:) the hits must all belong to")
	area := fs.String("area", "", "restrict to items under a container with this name")
	layer := fs.String("layer", "", "restrict to a schema layer (conceptual or physical)")
	semantic := fs.Bool("semantic", false, "expand the term with DBpedia synonyms")
	desc := fs.Bool("desc", false, "also match descriptions")
	tag := fs.String("tag", "", "restrict to items carrying this governance tag (e.g. pii)")
	hits := fs.Int("hits", 5, "max instances listed per class group")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("search: want exactly one TERM argument")
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	opt := search.Options{
		Area:              *area,
		Layer:             *layer,
		Semantic:          *semantic,
		MatchDescriptions: *desc,
		Tag:               *tag,
		MaxHitsPerGroup:   *hits,
	}
	for _, c := range splitList(*classes) {
		opt.FilterClasses = append(opt.FilterClasses, rdf.DMNS+c)
	}
	res, err := w.Search(fs.Arg(0), opt)
	if err != nil {
		return err
	}
	fmt.Print(search.FormatResult(res))
	return nil
}

// cmdIndex builds the full-text index and reports on it: overall size
// counters, and on request slices of the vocabulary (prefix/substring
// token lookups) or the literals matching a term.
func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	prefix := fs.String("prefix", "", "list indexed tokens starting with this prefix")
	contains := fs.String("contains", "", "list indexed tokens containing this substring")
	term := fs.String("term", "", "show the literals matching this term")
	limit := fs.Int("n", 20, "max tokens or matches listed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	ix, err := w.TextIndex()
	if err != nil {
		return err
	}
	st := ix.Stats()
	fmt.Printf("model       %s\n", st.Model)
	fmt.Printf("generation  %d\n", st.Gen)
	fmt.Printf("predicates  %d\n", st.Predicates)
	fmt.Printf("literals    %d\n", st.Literals)
	fmt.Printf("tokens      %d\n", st.Tokens)
	fmt.Printf("postings    %d\n", st.Postings)

	capped := func(label string, toks []string) {
		fmt.Printf("\n%d tokens %s\n", len(toks), label)
		for i, t := range toks {
			if i >= *limit {
				fmt.Printf("  ... and %d more\n", len(toks)-*limit)
				break
			}
			fmt.Printf("  %s\n", t)
		}
	}
	if *prefix != "" {
		capped(fmt.Sprintf("with prefix %q", *prefix), ix.TokensWithPrefix(*prefix))
	}
	if *contains != "" {
		capped(fmt.Sprintf("containing %q", *contains), ix.TokensContaining(*contains))
	}
	if *term != "" {
		dict := w.Store().Dict()
		names := ix.Search(*term, textindex.FieldName)
		descs := ix.Search(*term, textindex.FieldDescription)
		fmt.Printf("\nterm %q: %d name matches, %d description matches\n", *term, len(names), len(descs))
		for i, p := range names {
			if i >= *limit {
				fmt.Printf("  ... and %d more\n", len(names)-*limit)
				break
			}
			fmt.Printf("  %-40s %s\n", dict.Term(p.Object).Value, rdf.QName(dict.Term(p.Subject).Value))
		}
	}
	return nil
}

func cmdLineage(args []string) error {
	fs := flag.NewFlagSet("lineage", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	dir := fs.String("dir", "backward", "traversal direction: backward (provenance) or forward (impact)")
	depth := fs.Int("depth", 0, "maximum hops (0 = unbounded)")
	level := fs.String("level", "attribute", "roll-up level: attribute, relation, schema, application")
	rule := fs.String("rule", "", "only follow mappings whose rule contains this substring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("lineage: want exactly one ITEM-PATH argument (e.g. application1/dwhdb/mart/v_customer/customer_id)")
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	direction := lineage.Backward
	if *dir == "forward" {
		direction = lineage.Forward
	} else if *dir != "backward" {
		return fmt.Errorf("lineage: unknown direction %q", *dir)
	}
	opt := lineage.Options{MaxDepth: *depth}
	if *rule != "" {
		needle := *rule
		opt.RuleFilter = func(r string) bool { return strings.Contains(r, needle) }
	}
	item := staging.InstanceIRI(strings.Split(fs.Arg(0), "/")...)
	svc := w.LineageService()
	g, err := svc.Trace(item, direction, opt)
	if err != nil {
		return err
	}
	lvl, err := parseLevel(*level)
	if err != nil {
		return err
	}
	g, err = svc.Rollup(g, lvl)
	if err != nil {
		return err
	}
	fmt.Print(lineage.Format(g))
	return nil
}

func parseLevel(s string) (lineage.Level, error) {
	switch s {
	case "attribute":
		return lineage.LevelAttribute, nil
	case "relation":
		return lineage.LevelRelation, nil
	case "schema":
		return lineage.LevelSchema, nil
	case "application":
		return lineage.LevelApplication, nil
	default:
		return 0, fmt.Errorf("lineage: unknown level %q", s)
	}
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	factsOnly := fs.Bool("facts-only", false, "query base facts without the OWLPRIME index")
	explain := fs.Bool("explain", false, "print the evaluation plan instead of executing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query: want exactly one SPARQL argument")
	}
	if *explain {
		q, err := sparql.Parse(fs.Arg(0))
		if err != nil {
			return err
		}
		fmt.Print(q.Explain())
		return nil
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	res, err := w.Query(fs.Arg(0))
	if *factsOnly {
		res, err = w.QueryFacts(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	if len(res.Triples) > 0 {
		fmt.Print(ntriples.Marshal(res.Triples))
		fmt.Printf("(%d triples)\n", len(res.Triples))
		return nil
	}
	printResultTable(res.Vars, resultRows(res))
	return nil
}

// cmdExplain prints the statistics-driven evaluation plan — join order
// with estimated cardinalities, filter placement, streaming notes — for
// a SPARQL query or an Oracle-style SEM_MATCH call, without executing it.
// With -analyze it executes the query once and annotates every operator
// with estimated vs actual rows, loop counts, and wall time (EXPLAIN
// ANALYZE), followed by the execution's resource summary.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	analyze := fs.Bool("analyze", false, "execute the query and annotate the plan with actual rows, loops, and timings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: want exactly one SPARQL or SEM_MATCH(...) argument")
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	text := fs.Arg(0)
	if *analyze {
		var stats *sparql.ExecStats
		if strings.Contains(text, "SEM_MATCH") {
			_, stats, err = w.SemMatchAnalyzeCtx(context.Background(), text)
		} else {
			_, stats, err = w.QueryAnalyze(text)
		}
		if err != nil {
			return err
		}
		fmt.Print(stats.String())
		return nil
	}
	var plan string
	if strings.Contains(text, "SEM_MATCH") {
		plan, err = w.ExplainSemMatch(text)
	} else {
		plan, err = w.Explain(text)
	}
	if err != nil {
		return err
	}
	fmt.Print(plan)
	return nil
}

func cmdSemMatch(args []string) error {
	fs := flag.NewFlagSet("semmatch", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("semmatch: want exactly one SEM_MATCH(...) argument")
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	res, err := w.SemMatch(fs.Arg(0))
	if err != nil {
		return err
	}
	printResultTable(res.Vars, resultRows(res))
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	withLineage := fs.Bool("lineage", true, "extend the audit across the item's data flows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("audit: want exactly one ITEM-PATH argument")
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	item := staging.InstanceIRI(strings.Split(fs.Arg(0), "/")...)
	rep, err := w.Audit(item, *withLineage)
	if err != nil {
		return err
	}
	fmt.Print(audit.Format(rep))
	return nil
}

func cmdImpact(args []string) error {
	fs := flag.NewFlagSet("impact", flag.ContinueOnError)
	dump := fs.String("wh", "", "warehouse dump (with release history) written by core.Warehouse.Save")
	from := fs.Int("from", 1, "baseline release number")
	to := fs.Int("to", 2, "target release number")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var w *core.Warehouse
	var err error
	if *dump != "" {
		w, err = core.Open(*dump, "")
		if err != nil {
			return err
		}
	} else {
		// Built-in demo: Figure 3 with a release-2 change to the source
		// application's column.
		w, err = buildWarehouse("")
		if err != nil {
			return err
		}
		if _, err := w.Snapshot("R1", time.Date(2009, 1, 15, 0, 0, 0, 0, time.UTC)); err != nil {
			return err
		}
		src := staging.InstanceIRI("pb_frontend", "pbdb", "clients", "client_info", "client_information_id")
		w.LoadTriples([]rdf.Triple{rdf.T(src, rdf.IRI(rdf.MDWLength), rdf.Integer(64))})
		if _, err := w.Snapshot("R2", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC)); err != nil {
			return err
		}
		fmt.Println("(no -wh given: analyzing the built-in Figure 3 demo scenario)")
	}
	an, err := w.ImpactOfRelease(*from, *to)
	if err != nil {
		return err
	}
	fmt.Print(impact.Format(an))
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	validate := fs.Bool("validate", false, "also run convention validation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	if _, err := w.Reindex(); err != nil {
		return err
	}
	s := w.Stats()
	fmt.Printf("model      %s\n", s.Model)
	fmt.Printf("triples    %d base + %d derived = %d total\n", s.Triples, s.Derived, s.Triples+s.Derived)
	fmt.Printf("nodes      %d\n", s.Nodes)
	fmt.Printf("versions   %d\n", s.Versions)
	fmt.Println()
	fmt.Println(w.Census().Table1())
	if *validate {
		issues := w.Validate()
		fmt.Printf("validation: %d issues\n", len(issues))
		for i, is := range issues {
			if i >= 20 {
				fmt.Printf("  ... and %d more\n", len(issues)-20)
				break
			}
			fmt.Printf("  %s\n", is)
		}
	}
	return nil
}

func cmdLearnSchema(args []string) error {
	fs := flag.NewFlagSet("learn-schema", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	minInstances := fs.Int("min-instances", 3, "skip classes with fewer direct instances")
	minFill := fs.Float64("min-fill", 0.5, "skip properties used by less than this fraction of instances")
	migrate := fs.Bool("migrate", false, "also migrate the instances into the learned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	src := w.Store().ViewOf(w.Model())
	schema := schemalearn.Learn(src, w.Store().Dict(), schemalearn.Options{
		MinInstances: *minInstances,
		MinFill:      *minFill,
	})
	for _, ddl := range schema.DDL() {
		fmt.Println(ddl)
		fmt.Println()
	}
	fmt.Printf("-- %d tables; schema covers %.1f%% of instance fact triples (%d of %d)\n",
		len(schema.Tables), schema.Coverage()*100, schema.Covered, schema.Total)
	if *migrate {
		cat := relstore.New()
		if err := schema.Apply(cat); err != nil {
			return err
		}
		rows, uncovered, err := schemalearn.Migrate(src, w.Store().Dict(), schema, cat)
		if err != nil {
			return err
		}
		fmt.Printf("-- migrated %d rows; %d fact triples did not fit the schema\n", rows, uncovered)
	}
	return nil
}

// cmdMetrics exercises the warehouse with a small representative
// workload — a search, a SPARQL query, a lineage trace — and dumps the
// metrics the instrumented subsystems collected, in the Prometheus text
// exposition format. With -workload=false it only loads the data and
// dumps whatever the load alone produced (store and staging counters).
// With -slow-query the slow-query log is printed too (0s logs every
// query; useful to see rendered plans).
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	workload := fs.Bool("workload", true, "run the sample search/query/lineage workload first")
	slow := fs.Duration("slow-query", -1, "slow-query log threshold (0s = log everything, <0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sl := obs.DefaultSlowLog()
	sl.SetThreshold(*slow)
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	if *workload {
		if _, err := w.Search("customer", search.Options{}); err != nil {
			return err
		}
		q := `PREFIX dm: <` + rdf.DMNS + `>
SELECT ?n WHERE { ?x a dm:Attribute . ?x dm:hasName ?n }`
		if _, err := w.Query(q); err != nil {
			return err
		}
		item := staging.InstanceIRI("application1", "dwhdb", "mart", "v_customer", "customer_id")
		if _, err := w.Lineage(item, lineage.Backward, lineage.Options{}); err != nil {
			return err
		}
	}
	obs.SampleRuntime(obs.Default())
	if err := obs.Default().WritePrometheus(os.Stdout); err != nil {
		return err
	}
	printQuantiles(obs.Default().Snapshot())
	if entries := sl.Entries(); len(entries) > 0 {
		fmt.Printf("\n# slow-query log (%d entries, threshold %s)\n", len(entries), *slow)
		for _, e := range entries {
			fmt.Printf("\n-- %s  rows=%d  total=%s\n", e.When.Format(time.RFC3339), e.Rows, e.Total)
			for _, st := range e.Stages {
				fmt.Printf("   stage %-8s %s\n", st.Name, st.D)
			}
			fmt.Println(e.Query)
			fmt.Print(e.Plan)
		}
	}
	return nil
}

// printQuantiles summarizes every populated latency histogram in the
// snapshot as p50/p95/p99 estimates, interpolated from the cumulative
// bucket counts exactly the way Prometheus's histogram_quantile does.
func printQuantiles(snap []obs.SeriesValue) {
	header := false
	for _, sv := range snap {
		if sv.Kind != "histogram" || sv.Value == 0 || !strings.HasSuffix(sv.Family, "_seconds") {
			continue
		}
		if !header {
			fmt.Println("\n# latency quantiles (interpolated from histogram buckets)")
			header = true
		}
		name := sv.Family
		if sv.Labels != "" {
			name += "{" + sv.Labels + "}"
		}
		fmt.Printf("%-64s p50=%-10s p95=%-10s p99=%s\n", name,
			quantileDur(sv, 0.50), quantileDur(sv, 0.95), quantileDur(sv, 0.99))
	}
}

func quantileDur(sv obs.SeriesValue, q float64) string {
	v := obs.Quantile(sv.Bounds, sv.Counts, q)
	if math.IsNaN(v) {
		return "n/a"
	}
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// cmdTop prints the statement table — per-fingerprint call counts, row
// counts and latency aggregates, heaviest total time first (the
// pg_stat_statements view of the warehouse). With -url it reads GET
// /api/statements from a running mdwd; without, it replays the paper's
// Listing 1 and Listing 2 SEM_MATCH workload in-process so the
// aggregation is visible out of the box: Listing 1 runs with several
// different search terms, and because fingerprints normalize literals
// away, all of them fold into one row.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	url := fs.String("url", "", "base URL of a running mdwd; fetch its /api/statements instead of replaying locally")
	n := fs.Int("n", 10, "list at most this many statements")
	runs := fs.Int("runs", 3, "repetitions of each workload query (local mode)")
	misest := fs.Bool("misest", false, "show the planner-misestimation log instead of the statement table")
	misestThr := fs.Float64("misest-threshold", sparql.DefaultMisestimateThreshold,
		"misestimation reporting threshold for the local analyzed replay")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url != "" {
		if *misest {
			return topMisestRemote(*url, *n)
		}
		resp, err := http.Get(strings.TrimSuffix(*url, "/") + "/api/statements")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("top: %s returned %s", *url, resp.Status)
		}
		var remote struct {
			Evicted    int64               `json:"evicted"`
			Statements []obs.StatementStat `json:"statements"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&remote); err != nil {
			return fmt.Errorf("top: decoding /api/statements: %w", err)
		}
		printStatements(remote.Statements, remote.Evicted, *n)
		return nil
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	// -misest replays the workload analyzed, so every execution feeds the
	// misestimation channel instead of sampling via the slow-query path.
	sparql.SetMisestimateThreshold(*misestThr)
	if err := topWorkload(w, *runs, *misest); err != nil {
		return err
	}
	if *misest {
		printMisestimates(obs.DefaultMisestimates().Snapshot(), sparql.MisestimateThreshold(), *n)
		return nil
	}
	tbl := obs.DefaultStatements()
	printStatements(tbl.Snapshot(), tbl.Evicted(), *n)
	return nil
}

// topMisestRemote fetches and prints GET /api/misestimates of a running
// mdwd.
func topMisestRemote(url string, n int) error {
	resp, err := http.Get(strings.TrimSuffix(url, "/") + "/api/misestimates")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("top: %s returned %s", url, resp.Status)
	}
	var remote struct {
		Threshold    float64           `json:"threshold"`
		Misestimates []obs.Misestimate `json:"misestimates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&remote); err != nil {
		return fmt.Errorf("top: decoding /api/misestimates: %w", err)
	}
	printMisestimates(remote.Misestimates, remote.Threshold, n)
	return nil
}

// printMisestimates renders the misestimation log, worst offender first.
func printMisestimates(entries []obs.Misestimate, threshold float64, n int) {
	if n >= 0 && len(entries) > n {
		entries = entries[:n]
	}
	rows := make([][]string, 0, len(entries))
	for i, e := range entries {
		op := e.WorstOp
		if len(op) > 48 {
			op = op[:45] + "..."
		}
		stmt := e.Fingerprint
		if len(stmt) > 64 {
			stmt = stmt[:61] + "..."
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", e.Count),
			fmt.Sprintf("x%.1f", e.MaxRatio),
			fmt.Sprintf("x%.1f", e.Ratio),
			op,
			stmt,
		})
	}
	printResultTable([]string{"#", "count", "worst", "last", "operator", "statement"}, rows)
	if len(entries) == 0 {
		fmt.Printf("no misestimations at threshold x%g — the planner's estimates held up\n", threshold)
	} else {
		fmt.Printf("(analyzed executions whose worst operator estimate was off by >= x%g)\n", threshold)
	}
}

// cmdCheckpoint asks a running mdwd (started with -data-dir) to write a
// snapshot of its current state and truncate the WAL it covers.
func cmdCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "base URL of the running mdwd")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimSuffix(*url, "/")+"/api/checkpoint", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var remote struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&remote) == nil && remote.Error != "" {
			return fmt.Errorf("checkpoint: %s: %s", resp.Status, remote.Error)
		}
		return fmt.Errorf("checkpoint: %s returned %s", *url, resp.Status)
	}
	var stats struct {
		Path            string        `json:"path"`
		LSN             uint64        `json:"lsn"`
		Bytes           int64         `json:"bytes"`
		Models          int           `json:"models"`
		Triples         int           `json:"triples"`
		SegmentsRemoved int           `json:"segmentsRemoved"`
		Duration        time.Duration `json:"duration"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return fmt.Errorf("checkpoint: decoding response: %w", err)
	}
	fmt.Printf("checkpoint written: %s\n", stats.Path)
	fmt.Printf("  lsn      %d\n", stats.LSN)
	fmt.Printf("  size     %d bytes\n", stats.Bytes)
	fmt.Printf("  contents %d models, %d triples\n", stats.Models, stats.Triples)
	fmt.Printf("  wal      %d segments removed\n", stats.SegmentsRemoved)
	fmt.Printf("  took     %s\n", stats.Duration.Round(time.Millisecond))
	return nil
}

// cmdClone clones a model copy-on-write under a new name — sub-second
// even at paper scale, because only the outer index maps are copied and
// triples are shared until either side diverges. The clone starts at a
// fresh generation, so cached query results never alias source and
// clone. With -url the clone happens on a running mdwd (and, in
// -data-dir mode, lands in its write-ahead log); without, it runs
// locally against the loaded data set and reports the clone size.
func cmdClone(args []string) error {
	fs := flag.NewFlagSet("clone", flag.ContinueOnError)
	data := fs.String("data", "", "data directory written by `mdw generate`")
	url := fs.String("url", "", "base URL of a running mdwd; clone there instead of locally")
	src := fs.String("src", "", "source model name (default: the base model)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("clone: want exactly one DST model-name argument")
	}
	dst := fs.Arg(0)
	if *url != "" {
		u := strings.TrimSuffix(*url, "/") + "/api/clone?dst=" + neturl.QueryEscape(dst)
		if *src != "" {
			u += "&src=" + neturl.QueryEscape(*src)
		}
		resp, err := http.Post(u, "application/json", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var remote struct {
				Error string `json:"error"`
			}
			if json.NewDecoder(resp.Body).Decode(&remote) == nil && remote.Error != "" {
				return fmt.Errorf("clone: %s: %s", resp.Status, remote.Error)
			}
			return fmt.Errorf("clone: %s returned %s", *url, resp.Status)
		}
		var out struct {
			Src     string `json:"src"`
			Dst     string `json:"dst"`
			Triples int    `json:"triples"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return fmt.Errorf("clone: decoding response: %w", err)
		}
		fmt.Printf("cloned %s -> %s (%d triples, copy-on-write)\n", out.Src, out.Dst, out.Triples)
		return nil
	}
	w, err := buildWarehouse(*data)
	if err != nil {
		return err
	}
	start := time.Now()
	n, err := w.CloneModel(*src, dst)
	if err != nil {
		return err
	}
	from := *src
	if from == "" {
		from = w.Model()
	}
	fmt.Printf("cloned %s -> %s (%d triples, copy-on-write) in %s\n",
		from, dst, n, time.Since(start).Round(time.Microsecond))
	return nil
}

// topWorkload replays the paper's two listings against the warehouse:
// Listing 1 (classify search hits by ontology class) once per term in a
// small term set, and Listing 2 (column-level lineage) — each repeated
// runs times so the statement table has latency distributions to show.
func topWorkload(w *core.Warehouse, runs int, analyzed bool) error {
	l1, err := semmatch.ParseCall(`SEM_MATCH(
		{?object rdf:type ?c .
		 ?c rdfs:label ?class .
		 ?object dm:hasName ?term},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(SEM_ALIAS('dm', '` + rdf.DMNS + `'),
		            SEM_ALIAS('owl', 'http://www.w3.org/2002/07/owl#')),
		null)`)
	if err != nil {
		return err
	}
	l1.Select = []string{"class", "object"}
	l1.GroupBy = []string{"class", "object"}
	l2, err := semmatch.ParseCall(`SEM_MATCH(
		{?source_id dt:isMappedTo ?target_id .
		 ?target_id rdf:type dm:Application1_View_Column .
		 ?target_id dm:hasName ?target_name},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(SEM_ALIAS('dm', '` + rdf.DMNS + `'),
		            SEM_ALIAS('dt', '` + rdf.DTNS + `')),
		null)`)
	if err != nil {
		return err
	}
	l2.Select = []string{"source_id", "target_id", "target_name"}
	run := func(req semmatch.Request) error {
		if analyzed {
			_, _, err := req.ExecAnalyze(w.Store())
			return err
		}
		_, err := req.Exec(w.Store())
		return err
	}
	for i := 0; i < runs; i++ {
		for _, term := range []string{"customer", "account", "branch"} {
			req := *l1
			req.Filter = fmt.Sprintf("regex(?term, %q, \"i\")", term)
			if err := run(req); err != nil {
				return err
			}
		}
		if err := run(*l2); err != nil {
			return err
		}
	}
	return nil
}

// printStatements renders statement rows as an aligned table, truncating
// the normalized statement text so rows stay on one terminal line.
func printStatements(stmts []obs.StatementStat, evicted int64, n int) {
	if n >= 0 && len(stmts) > n {
		stmts = stmts[:n]
	}
	rows := make([][]string, 0, len(stmts))
	for i, st := range stmts {
		stmt := st.Fingerprint
		if len(stmt) > 96 {
			stmt = stmt[:93] + "..."
		}
		par := "-"
		if st.Parallelism > 0 {
			par = fmt.Sprintf("%d", st.Parallelism)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", st.Calls),
			fmt.Sprintf("%d", st.Rows),
			st.Total.Round(time.Microsecond).String(),
			st.Mean.Round(time.Microsecond).String(),
			st.Min.Round(time.Microsecond).String(),
			st.Max.Round(time.Microsecond).String(),
			par,
			stmt,
		})
	}
	printResultTable([]string{"#", "calls", "rows", "total", "mean", "min", "max", "par", "statement"}, rows)
	if evicted > 0 {
		fmt.Printf("(%d least-expensive fingerprints evicted from the table)\n", evicted)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// printResultTable renders a query result as an aligned table.
func printResultTable(vars []string, rows [][]string) {
	widths := make([]int, len(vars))
	for i, v := range vars {
		widths[i] = len(v)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
	line(vars)
	for _, r := range rows {
		line(r)
	}
	fmt.Printf("(%d rows)\n", len(rows))
}

// resultRows flattens a SPARQL result into printable cells; IRIs are
// abbreviated with the well-known prefixes.
func resultRows(res *sparql.Result) [][]string {
	out := make([][]string, 0, len(res.Rows))
	for _, b := range res.Rows {
		row := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			if t, ok := b[v]; ok {
				if t.IsIRI() {
					row[i] = rdf.QName(t.Value)
				} else {
					row[i] = t.Value
				}
			}
		}
		out = append(out, row)
	}
	return out
}
