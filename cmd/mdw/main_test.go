package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command should error")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestSearchCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"search", "customer"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, `Search Results for "customer"`) || !contains(out, "Attribute") {
		t.Errorf("output:\n%s", out)
	}
	if err := run([]string{"search"}); err == nil {
		t.Error("missing term should error")
	}
}

func TestSearchCommandFlags(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"search", "-class", "Application1_Item,Interface_Item", "-semantic", "customer"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "1 matching instances") {
		t.Errorf("output:\n%s", out)
	}
}

func TestLineageCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"lineage", "application1/dwhdb/mart/v_customer/customer_id"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "backward lineage of customer_id") || !contains(out, "partner_id -> customer_id") {
		t.Errorf("output:\n%s", out)
	}
	// Roll-up and direction flags.
	out, err = capture(t, func() error {
		return run([]string{"lineage", "-level", "application",
			"application1/dwhdb/mart/v_customer/customer_id"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "pb_frontend -> application1") {
		t.Errorf("app-level output:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"lineage", "-dir", "forward",
			"pb_frontend/pbdb/clients/client_info/client_information_id"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "forward lineage") {
		t.Errorf("forward output:\n%s", out)
	}
	if err := run([]string{"lineage", "-dir", "sideways", "x"}); err == nil {
		t.Error("bad direction should error")
	}
	if err := run([]string{"lineage", "-level", "galaxy", "x"}); err == nil {
		t.Error("bad level should error")
	}
	if err := run([]string{"lineage"}); err == nil {
		t.Error("missing item should error")
	}
}

func TestQueryCommand(t *testing.T) {
	q := `PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
		SELECT ?name WHERE { ?x a dm:Attribute . ?x dm:hasName ?name } ORDER BY ?name`
	out, err := capture(t, func() error { return run([]string{"query", q}) })
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "customer_id") || !contains(out, "rows)") {
		t.Errorf("output:\n%s", out)
	}
	// Facts-only sees nothing inferred.
	out, err = capture(t, func() error { return run([]string{"query", "-facts-only", q}) })
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "(0 rows)") {
		t.Errorf("facts-only output:\n%s", out)
	}
	if err := run([]string{"query", "NOT SPARQL"}); err == nil {
		t.Error("bad query should error")
	}
}

func TestSemMatchCommand(t *testing.T) {
	call := `SEM_MATCH(
		{?source_id dt:isMappedTo ?target_id .
		 ?target_id rdf:type dm:Application1_View_Column .
		 ?target_id dm:hasName ?target_name},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(
			SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'),
			SEM_ALIAS('dt', 'http://www.credit-suisse.com/dwh/mdm/data_transfer#')),
		null)`
	out, err := capture(t, func() error { return run([]string{"semmatch", call}) })
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "customer_id") {
		t.Errorf("output:\n%s", out)
	}
}

func TestStatsCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"stats", "-validate"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"triples", "nodes", "Facts", "validation:"} {
		if !contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestGenerateAndDataRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	out, err := capture(t, func() error {
		return run([]string{"generate", "-scale", "small", "-out", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "ontology.ttl") || !contains(out, "mapping chains") {
		t.Errorf("generate output:\n%s", out)
	}
	// The generated directory is loadable by every command.
	out, err = capture(t, func() error {
		return run([]string{"search", "-data", dir, "-desc", "customer"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "matching instances") {
		t.Errorf("search -data output:\n%s", out)
	}
	if err := run([]string{"generate", "-scale", "bogus", "-out", dir}); err == nil {
		t.Error("bad scale should error")
	}
}

func TestReportCommands(t *testing.T) {
	for _, artifact := range []string{"table1", "subjects", "figure6", "figure7"} {
		out, err := capture(t, func() error { return run([]string{"report", artifact}) })
		if err != nil {
			t.Fatalf("report %s: %v", artifact, err)
		}
		if len(out) < 40 {
			t.Errorf("report %s output suspiciously short:\n%s", artifact, out)
		}
	}
	if err := run([]string{"report"}); err == nil {
		t.Error("missing artifact should error")
	}
	if err := run([]string{"report", "bogus"}); err == nil {
		t.Error("unknown artifact should error")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestImpactCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"impact"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "impact of release R1 -> R2") || !contains(out, "application1") {
		t.Errorf("output:\n%s", out)
	}
	if err := run([]string{"impact", "-from", "1", "-to", "9"}); err == nil {
		t.Error("missing release should error")
	}
}

func TestAuditCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"audit", "application1/dwhdb/mart/v_customer/customer_id"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "access audit for customer_id") || !contains(out, "carol") {
		t.Errorf("output:\n%s", out)
	}
	if err := run([]string{"audit"}); err == nil {
		t.Error("missing item should error")
	}
}

func TestLearnSchemaCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"learn-schema", "-min-instances", "1", "-migrate"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "CREATE TABLE") || !contains(out, "migrated") {
		t.Errorf("output:\n%s", out)
	}
}

func TestQueryExplain(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"query", "-explain", "SELECT ?x WHERE { ?x ?p ?o }"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "BGP") {
		t.Errorf("output:\n%s", out)
	}
	if err := run([]string{"query", "-explain", "BAD"}); err == nil {
		t.Error("bad query should error in explain")
	}
}

func TestCloneCommand(t *testing.T) {
	if err := run([]string{"clone"}); err == nil {
		t.Error("clone without DST did not fail")
	}
	out, err := capture(t, func() error { return run([]string{"clone", "SANDBOX"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cloned DWH_CURR -> SANDBOX") || !strings.Contains(out, "copy-on-write") {
		t.Errorf("clone output = %q", out)
	}
}
