package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"mdw/internal/history"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/metamodel"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/search"
	"mdw/internal/staging"
	"mdw/internal/store"
)

// cmdReport regenerates the paper's tables and figures from a generated
// landscape.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	scale := fs.String("scale", "small", "landscape scale: small or paper")
	// Accept the artifact name either before or after the flags.
	artifact := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		artifact, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if artifact == "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("report: want one of table1, subjects, scale, figure6, figure7")
		}
		artifact = fs.Arg(0)
	}
	switch artifact {
	case "table1":
		return reportTable1(*scale)
	case "subjects":
		return reportSubjects(*scale)
	case "scale":
		return reportScale(*scale)
	case "figure6":
		return reportFigure6(*scale)
	case "figure7":
		return reportFigure7()
	case "growth":
		return reportGrowth(*scale)
	default:
		return fmt.Errorf("report: unknown artifact %q", fs.Arg(0))
	}
}

// reportGrowth reproduces the Section III.A historization narrative:
// eight releases in a year, each historized completely, with the graph
// growing 20–30% over the year.
func reportGrowth(scale string) error {
	cfg, err := scaleConfig(scale)
	if err != nil {
		return err
	}
	l := landscape.Generate(cfg)
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "DWH_CURR"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		return err
	}
	h := history.NewHistorian(st, "DWH_CURR")
	base := time.Date(2009, 1, 15, 0, 0, 0, 0, time.UTC)
	if _, err := h.Snapshot("2009-R1", base); err != nil {
		return err
	}
	for r := 2; r <= 8; r++ {
		if _, err := landscape.Evolve(l, r, 0.05); err != nil {
			return err
		}
		if _, err := (staging.Pipeline{Store: st, Model: "DWH_CURR"}).Run(l.Exports, nil); err != nil {
			return err
		}
		if _, err := h.Snapshot(fmt.Sprintf("2009-R%d", r), base.AddDate(0, 0, (r-1)*45)); err != nil {
			return err
		}
	}
	fmt.Println("Section III.A: release cadence and growth (8 releases/year)")
	fmt.Println()
	fmt.Printf("  %-10s %-12s %10s %9s\n", "release", "date", "triples", "growth")
	g := h.Growth()
	for i, v := range g.Versions {
		growth := ""
		if i > 0 {
			growth = fmt.Sprintf("%+.1f%%", g.Growth[i-1]*100)
		}
		fmt.Printf("  %-10s %-12s %10d %9s\n", v.Tag, v.At.Format("2006-01-02"), v.Triples, growth)
	}
	first, last := g.Versions[0], g.Versions[len(g.Versions)-1]
	fmt.Printf("\n  annual growth: %+.1f%%   (paper: 20-30%% per year)\n",
		(float64(last.Triples)/float64(first.Triples)-1)*100)
	return nil
}

func loadLandscape(scale string) (*landscape.Landscape, *store.Store, staging.LoadStats, error) {
	cfg, err := scaleConfig(scale)
	if err != nil {
		return nil, nil, staging.LoadStats{}, err
	}
	l := landscape.Generate(cfg)
	st := store.New()
	stats, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(l.Exports, l.Ontology.Triples())
	if err != nil {
		return nil, nil, stats, err
	}
	st.AddAll("DWH_CURR", l.ExtraTriples())
	return l, st, stats, nil
}

// reportTable1 prints the Table I census of the generated graph.
func reportTable1(scale string) error {
	_, st, _, err := loadLandscape(scale)
	if err != nil {
		return err
	}
	cs, _ := metamodel.TakeCensus(st.ViewOf("DWH_CURR"), st.Dict())
	fmt.Printf("Table I census of the generated meta-data graph (%s scale)\n\n", scale)
	fmt.Println(cs.Table1())
	return nil
}

// reportSubjects prints the Figure 1 / Figure 9 subject-area inventory.
func reportSubjects(scale string) error {
	l, st, _, err := loadLandscape(scale)
	if err != nil {
		return err
	}
	fmt.Printf("Subject areas of the generated IT landscape (%s scale)\n\n", scale)
	// Count through the entailment index so instances of subclasses
	// (e.g. Programming_Language under Technology) are included.
	view := st.ViewOf("DWH_CURR", "DWH_CURR$OWLPRIME")
	dict := st.Dict()
	count := func(class string) int {
		typeID, ok1 := dict.Lookup(rdf.Type)
		clsID, ok2 := dict.Lookup(rdf.IRI(rdf.DMNS + class))
		if !ok1 || !ok2 {
			return 0
		}
		return len(view.Subjects(typeID, clsID))
	}
	rows := []struct{ area, class string }{
		{"Applications", "Application"},
		{"Databases", "Database"},
		{"Schemas", "Schema"},
		{"Tables", "Table"},
		{"Views", "View"},
		{"Source files", "Source_File"},
		{"Interfaces", "Interface"},
		{"Mappings (data flows)", "Mapping"},
		{"Users", "User"},
		{"Reports", "Report"},
		{"Technologies", "Technology"},
		{"Log files", "Log_File"},
	}
	for _, r := range rows {
		fmt.Printf("  %-24s %7d\n", r.area, count(r.class))
	}
	fmt.Printf("  %-24s %7d\n", "Mapping chains", len(l.Chains))
	return nil
}

// reportScale prints the Section III.A scale figures next to the paper's.
func reportScale(scale string) error {
	t0 := time.Now()
	_, st, stats, err := loadLandscape(scale)
	if err != nil {
		return err
	}
	loadTime := time.Since(t0)
	cs, _ := metamodel.TakeCensus(st.ViewOf("DWH_CURR"), st.Dict())
	fmt.Printf("Graph scale (%s configuration) vs. Section III.A\n\n", scale)
	fmt.Printf("  %-28s %12s %15s\n", "", "measured", "paper")
	fmt.Printf("  %-28s %12d %15s\n", "nodes", cs.NodeTotal(), "~130,000")
	fmt.Printf("  %-28s %12d %15s\n", "base edges", cs.Total, "")
	fmt.Printf("  %-28s %12d %15s\n", "derived (index) edges", stats.Derived, "")
	fmt.Printf("  %-28s %12d %15s\n", "total edges", cs.Total+stats.Derived, "~1,200,000")
	fmt.Printf("  %-28s %12s\n", "load+materialize", loadTime.Round(time.Millisecond).String())
	return nil
}

// reportFigure6 reproduces the Figure 6 search-result screenshot: the
// grouped class counts for the term "customer".
func reportFigure6(scale string) error {
	_, st, _, err := loadLandscape(scale)
	if err != nil {
		return err
	}
	svc := search.New(st, "DWH_CURR", nil)
	res, err := svc.Search("customer", search.Options{MaxHitsPerGroup: 3})
	if err != nil {
		return err
	}
	fmt.Println("Figure 6: search results for \"customer\", grouped by class")
	fmt.Println()
	fmt.Print(search.FormatResult(res))
	return nil
}

// reportFigure7 reproduces the Figure 7/8 lineage drill-down on the
// Figure 3 example: the customer identification chain at every roll-up
// level.
func reportFigure7() error {
	st := store.New()
	l := landscape.Figure3Export()
	if _, err := (staging.Pipeline{Store: st, Model: "DWH_CURR"}).Run(
		[]*staging.Export{l}, ontology.DWH().Triples()); err != nil {
		return err
	}
	svc := lineage.New(st, "DWH_CURR")
	item := staging.InstanceIRI(strings.Split(landscape.Figure3Paths()[3], "/")...)
	g, err := svc.Trace(item, lineage.Backward, lineage.Options{})
	if err != nil {
		return err
	}
	fmt.Println("Figure 7/8: provenance of customer_id at each granularity")
	for _, lvl := range []lineage.Level{
		lineage.LevelAttribute, lineage.LevelRelation, lineage.LevelSchema, lineage.LevelApplication,
	} {
		rolled, err := svc.Rollup(g, lvl)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- level: %s --\n", lvl)
		fmt.Print(lineage.Format(rolled))
	}
	// The Figure 8 path expression, answered via classes.
	fmt.Println("\n(isMappedTo)* rdf:type classes of the chain:")
	var names []string
	for _, n := range g.Nodes {
		for _, c := range n.Classes {
			names = append(names, n.Name+" : "+rdf.LocalName(c))
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println("  " + n)
	}
	return nil
}
