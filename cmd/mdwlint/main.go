// Command mdwlint is the warehouse's static-analysis multichecker. It
// loads the requested packages with the repository's own source loader
// (no external tooling, so it runs offline) and applies the nine
// repo-specific analyzers:
//
//	sparqlcheck  constant query strings must parse
//	iricheck     constant IRIs/prefixed names must exist in the vocabulary
//	locksafe     no lock re-entry, callbacks, or channel sends under a mutex
//	mustparse    sparql.MustParse takes constants only
//	lockorder    mutexes must be acquired in one consistent global order
//	ctxflow      contexts must be forwarded to context-aware callees
//	syncerr      durable Write/Sync/Flush/Close errors must be checked
//	atomicmix    no plain access to fields accessed via sync/atomic
//	goroleak     goroutines must be tied to a shutdown path
//
// Usage:
//
//	go run ./cmd/mdwlint ./...
//	go run ./cmd/mdwlint -help
//	go run ./cmd/mdwlint -only sparqlcheck,iricheck ./internal/core
//	go run ./cmd/mdwlint -json ./...
//	go run ./cmd/mdwlint -c 2 ./internal/store
//
// Diagnostics print as file:line:col: analyzer: message; the exit code
// is 1 when any diagnostic is reported. With -json the full result —
// diagnostics plus stale suppression comments — is a single JSON
// object on stdout. -c N adds N lines of source context around each
// diagnostic in text mode.
//
// A finding is waived in source with a trailing
// "//mdwlint:allow <analyzer> <reason>" comment. When the full analyzer
// set runs, an allow comment that no longer suppresses anything is
// itself reported (analyzer "deadallow"): stale waivers hide real
// findings added later at the same site.
//
// Packages that fail to load — parse errors, real type errors that the
// loader's import stubbing cannot explain — are reported under the
// "loader" pseudo-analyzer and exit 1 like any other finding; a package
// that did not load was not analyzed, and silence would be a false
// "clean".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mdw/internal/analysis/atomicmix"
	"mdw/internal/analysis/ctxflow"
	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/goroleak"
	"mdw/internal/analysis/iricheck"
	"mdw/internal/analysis/lockorder"
	"mdw/internal/analysis/locksafe"
	"mdw/internal/analysis/mustparse"
	"mdw/internal/analysis/sparqlcheck"
	"mdw/internal/analysis/syncerr"
)

var all = []*framework.Analyzer{
	sparqlcheck.Analyzer,
	iricheck.Analyzer,
	locksafe.Analyzer,
	mustparse.Analyzer,
	lockorder.Analyzer,
	ctxflow.Analyzer,
	syncerr.Analyzer,
	atomicmix.Analyzer,
	goroleak.Analyzer,
}

// deadAllowName labels stale-suppression findings.
const deadAllowName = "deadallow"

// jsonDiagnostic is the -json wire shape of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonResult is the -json top-level object.
type jsonResult struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("help-analyzers", false, "print the analyzers and their documentation")
	asJSON := flag.Bool("json", false, "emit the diagnostics as one JSON object on stdout")
	context := flag.Int("c", 0, "print N lines of source context around each diagnostic (text mode)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mdwlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers: %s\n\n", names(all))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	fullSet := true
	if *only != "" {
		analyzers = nil
		fullSet = false
		for _, want := range strings.Split(*only, ",") {
			want = strings.TrimSpace(want)
			found := false
			for _, a := range all {
				if a.Name == want {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "mdwlint: unknown analyzer %q (have %s)\n", want, names(all))
				os.Exit(2)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
		os.Exit(2)
	}
	loader, err := framework.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
		os.Exit(2)
	}

	res, err := framework.RunAll(pkgs, analyzers...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
		os.Exit(2)
	}
	diags := res.Diagnostics

	// Stale-allow audit: only meaningful when every analyzer ran — a
	// partial run cannot tell "nothing to suppress" from "suppressed
	// analyzer was not invoked".
	if fullSet {
		for _, a := range res.Allows {
			if a.Used || !knownAnalyzer(a.Analyzer) {
				continue
			}
			diags = append(diags, framework.Diagnostic{
				Analyzer: deadAllowName,
				Pos:      a.Pos,
				Message:  fmt.Sprintf("stale //mdwlint:allow %s — it suppresses nothing; remove it so it cannot mask a future finding", a.Analyzer),
			})
		}
	}

	if *asJSON {
		out := jsonResult{Diagnostics: []jsonDiagnostic{}}
		for _, d := range diags {
			out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			if *context > 0 {
				printContext(d, *context)
			}
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// printContext prints n source lines either side of the diagnostic,
// gutter-numbered, with a marker on the reported line.
func printContext(d framework.Diagnostic, n int) {
	if d.Pos.Filename == "" || d.Pos.Line <= 0 {
		return
	}
	f, err := os.Open(d.Pos.Filename)
	if err != nil {
		return
	}
	defer f.Close()
	first, last := d.Pos.Line-n, d.Pos.Line+n
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for line := 1; sc.Scan(); line++ {
		if line < first {
			continue
		}
		if line > last {
			break
		}
		marker := " "
		if line == d.Pos.Line {
			marker = ">"
		}
		fmt.Printf("  %s %4d | %s\n", marker, line, sc.Text())
	}
	fmt.Println()
}

func knownAnalyzer(name string) bool {
	for _, a := range all {
		if a.Name == name {
			return true
		}
	}
	return false
}

func names(as []*framework.Analyzer) string {
	var ns []string
	for _, a := range as {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}
