// Command mdwlint is the warehouse's static-analysis multichecker. It
// loads the requested packages with the repository's own source loader
// (no external tooling, so it runs offline) and applies the four
// repo-specific analyzers:
//
//	sparqlcheck  constant query strings must parse
//	iricheck     constant IRIs/prefixed names must exist in the vocabulary
//	locksafe     no lock re-entry, callbacks, or channel sends under a mutex
//	mustparse    sparql.MustParse takes constants only
//
// Usage:
//
//	go run ./cmd/mdwlint ./...
//	go run ./cmd/mdwlint -help
//	go run ./cmd/mdwlint -only sparqlcheck,iricheck ./internal/core
//
// Diagnostics print as file:line:col: analyzer: message; the exit code
// is 1 when any diagnostic is reported. A finding is waived in source
// with a trailing "//mdwlint:allow <analyzer> <reason>" comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/iricheck"
	"mdw/internal/analysis/locksafe"
	"mdw/internal/analysis/mustparse"
	"mdw/internal/analysis/sparqlcheck"
)

var all = []*framework.Analyzer{
	sparqlcheck.Analyzer,
	iricheck.Analyzer,
	locksafe.Analyzer,
	mustparse.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("help-analyzers", false, "print the analyzers and their documentation")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mdwlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers: %s\n\n", names(all))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		analyzers = nil
		for _, want := range strings.Split(*only, ",") {
			want = strings.TrimSpace(want)
			found := false
			for _, a := range all {
				if a.Name == want {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "mdwlint: unknown analyzer %q (have %s)\n", want, names(all))
				os.Exit(2)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
		os.Exit(2)
	}
	loader, err := framework.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
		os.Exit(2)
	}

	diags, err := framework.Run(pkgs, analyzers...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func names(as []*framework.Analyzer) string {
	var ns []string
	for _, a := range as {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}
