module mdw

go 1.22
