// Package mdw holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation narrative. The per-experiment
// index in DESIGN.md maps each benchmark to the artifact it reproduces;
// EXPERIMENTS.md records paper-vs-measured results.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package mdw

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mdw/internal/audit"
	"mdw/internal/dbpedia"
	"mdw/internal/history"
	"mdw/internal/impact"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/metamodel"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/relstore"
	"mdw/internal/schemalearn"
	"mdw/internal/search"
	"mdw/internal/semmatch"
	"mdw/internal/sparql"
	"mdw/internal/staging"
	"mdw/internal/store"
	"mdw/internal/textindex"
)

// ---------------------------------------------------------------------
// Shared fixtures (built once, reused across benchmarks).

type fixture struct {
	l     *landscape.Landscape
	st    *store.Store
	stats staging.LoadStats
}

var (
	smallOnce sync.Once
	smallFix  *fixture

	figOnce sync.Once
	figFix  *fixture

	paperOnce sync.Once
	paperFix  *fixture
)

func smallLandscape(b *testing.B) *fixture {
	b.Helper()
	smallOnce.Do(func() {
		l := landscape.Generate(landscape.Small())
		st := store.New()
		stats, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(l.Exports, l.Ontology.Triples())
		if err != nil {
			panic(err)
		}
		st.AddAll("DWH_CURR", l.ExtraTriples())
		if _, _, err := reason.NewEngine(st).Materialize("DWH_CURR"); err != nil {
			panic(err)
		}
		smallFix = &fixture{l: l, st: st, stats: stats}
	})
	return smallFix
}

func paperLandscape(b *testing.B) *fixture {
	b.Helper()
	paperOnce.Do(func() {
		l := landscape.Generate(landscape.PaperScale())
		st := store.New()
		stats, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(l.Exports, l.Ontology.Triples())
		if err != nil {
			panic(err)
		}
		st.AddAll("DWH_CURR", l.ExtraTriples())
		if _, _, err := reason.NewEngine(st).Materialize("DWH_CURR"); err != nil {
			panic(err)
		}
		paperFix = &fixture{l: l, st: st, stats: stats}
	})
	return paperFix
}

func figure3Fixture(b *testing.B) *fixture {
	b.Helper()
	figOnce.Do(func() {
		st := store.New()
		stats, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(
			[]*staging.Export{landscape.Figure3Export()}, ontology.DWH().Triples())
		if err != nil {
			panic(err)
		}
		figFix = &fixture{st: st, stats: stats}
	})
	return figFix
}

func pathTerm(path string) rdf.Term {
	return staging.InstanceIRI(strings.Split(path, "/")...)
}

// ---------------------------------------------------------------------
// E1 — Table I: census of node types × edge categories.

func BenchmarkTable1Census(b *testing.B) {
	f := smallLandscape(b)
	var cs *metamodel.Census
	for i := 0; i < b.N; i++ {
		cs, _ = metamodel.TakeCensus(f.st.ViewOf("DWH_CURR"), f.st.Dict())
	}
	b.ReportMetric(float64(cs.NodeTotal()), "nodes")
	b.ReportMetric(float64(cs.Total), "edges")
}

// ---------------------------------------------------------------------
// E3 — Figures 2/3: the customer-identification snippet, built and
// traced end to end.

func BenchmarkFigure3Snippet(b *testing.B) {
	target := pathTerm(landscape.Figure3Paths()[3])
	for i := 0; i < b.N; i++ {
		st := store.New()
		if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(
			[]*staging.Export{landscape.Figure3Export()}, ontology.DWH().Triples()); err != nil {
			b.Fatal(err)
		}
		g, err := lineage.New(st, "m").Trace(target, lineage.Backward, lineage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Nodes) != 4 {
			b.Fatalf("nodes = %d", len(g.Nodes))
		}
	}
}

// ---------------------------------------------------------------------
// E4 — Figure 4: the full load pipeline (XML → RDF → staging → bulk
// load → OWLPRIME index). The "paper" sub-benchmark runs at the
// published graph scale (~130k nodes, ~1M edges including the index).

func BenchmarkFigure4Pipeline(b *testing.B) {
	run := func(b *testing.B, cfg landscape.Config) {
		var stats staging.LoadStats
		for i := 0; i < b.N; i++ {
			l := landscape.Generate(cfg)
			st := store.New()
			var err error
			stats, err = staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(l.Exports, l.Ontology.Triples())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Loaded), "base-triples")
		b.ReportMetric(float64(stats.Derived), "derived-triples")
	}
	b.Run("small", func(b *testing.B) { run(b, landscape.Small()) })
	b.Run("paper", func(b *testing.B) { run(b, landscape.PaperScale()) })
}

// ---------------------------------------------------------------------
// E5 — Figures 5/6 and Listing 1: the search facility.

func BenchmarkFigure6Search(b *testing.B) {
	f := smallLandscape(b)
	th := dbpedia.FromTriples(dbpedia.Banking())
	// One manager shared by every case, so the inverted index is built
	// once; a warm-up search triggers that build before the timer runs.
	mgr := textindex.NewManager(textindex.Config{})

	cases := []struct {
		name string
		svc  *search.Service
		opt  search.Options
	}{
		{"plain", search.New(f.st, "DWH_CURR", nil), search.Options{}},
		{"filtered", search.New(f.st, "DWH_CURR", nil), search.Options{
			FilterClasses: []string{rdf.DMNS + "Attribute"},
		}},
		{"semantic", search.New(f.st, "DWH_CURR", th), search.Options{Semantic: true}},
		{"descriptions", search.New(f.st, "DWH_CURR", nil), search.Options{MatchDescriptions: true}},
	}
	for _, c := range cases {
		svc := c.svc.WithIndexManager(mgr)
		for _, mode := range []string{"indexed", "scan"} {
			opt := c.opt
			opt.ForceScan = mode == "scan"
			b.Run(c.name+"/"+mode, func(b *testing.B) {
				if _, err := svc.Search("customer", opt); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var hits int
				for i := 0; i < b.N; i++ {
					res, err := svc.Search("customer", opt)
					if err != nil {
						b.Fatal(err)
					}
					hits = res.Instances
				}
				b.ReportMetric(float64(hits), "hits")
			})
		}
	}
}

// BenchmarkSearchIndexed isolates the tentpole comparison: the inverted
// full-text index against the retained literal-scan oracle, at the small
// scale and at the paper's published graph scale.
func BenchmarkSearchIndexed(b *testing.B) {
	scales := []struct {
		name string
		fix  func(*testing.B) *fixture
	}{
		{"small", smallLandscape},
		{"paper", paperLandscape},
	}
	for _, sc := range scales {
		f := sc.fix(b)
		svc := search.New(f.st, "DWH_CURR", nil)
		for _, mode := range []string{"indexed", "scan"} {
			opt := search.Options{ForceScan: mode == "scan"}
			b.Run(sc.name+"/"+mode, func(b *testing.B) {
				if _, err := svc.Search("customer", opt); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var hits int
				for i := 0; i < b.N; i++ {
					res, err := svc.Search("customer", opt)
					if err != nil {
						b.Fatal(err)
					}
					hits = res.Instances
				}
				b.ReportMetric(float64(hits), "hits")
			})
		}
	}
}

// BenchmarkListing1 runs the paper's Listing 1 SEM_MATCH call verbatim.
func BenchmarkListing1(b *testing.B) {
	f := figure3Fixture(b)
	call := `SEM_MATCH(
		{?object rdf:type ?c .
		 ?c rdfs:label ?class .
		 ?object dm:hasName ?term},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'),
		            SEM_ALIAS('owl', 'http://www.w3.org/2002/07/owl#')),
		null)`
	req, err := semmatch.ParseCall(call)
	if err != nil {
		b.Fatal(err)
	}
	req.Filter = `regex(?term, "customer", "i")`
	req.Select = []string{"class", "object"}
	req.GroupBy = []string{"class", "object"}
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := req.Exec(f.st)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// ---------------------------------------------------------------------
// E6 — Figures 7/8 and Listing 2: lineage.

func BenchmarkFigure8Lineage(b *testing.B) {
	f := smallLandscape(b)
	svc := lineage.New(f.st, "DWH_CURR")
	target := pathTerm(f.l.MartColumns[0])

	b.Run("trace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.Trace(target, lineage.Backward, lineage.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sources", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.Sources(target, lineage.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("impact", func(b *testing.B) {
		origin := pathTerm(f.l.Chains[0][0])
		for i := 0; i < b.N; i++ {
			if _, err := svc.Impact(origin, lineage.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rollup", func(b *testing.B) {
		g, err := svc.Trace(target, lineage.Backward, lineage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := svc.Rollup(g, lineage.LevelApplication); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The (isMappedTo)* property path through the SPARQL engine.
	b.Run("sparql-path", func(b *testing.B) {
		idx := reason.IndexModelName("DWH_CURR", reason.RulebaseOWLPrime)
		src := f.st.ViewOf("DWH_CURR", idx)
		q := sparql.MustParse(`PREFIX dt: <` + rdf.DTNS + `>
			SELECT ?s WHERE { ?s dt:isMappedTo* <` + target.Value + `> }`)
		for i := 0; i < b.N; i++ {
			if _, err := q.Exec(src, f.st.Dict()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure8LineagePaper reruns the Figure 8 lineage workload at
// paper scale through the SPARQL engine, sweeping the parallel
// executor's worker cap (par=all is the process-wide default,
// GOMAXPROCS or MDW_PARALLELISM). Every sub-benchmark reports the
// plan-selected degree of parallelism as the "workers" metric — the CI
// smoke asserts it exceeds 1 at par=all on multi-core runners — and
// BENCH_parallel.json records the sweep.
func BenchmarkFigure8LineagePaper(b *testing.B) {
	f := paperLandscape(b)
	idx := reason.IndexModelName("DWH_CURR", reason.RulebaseOWLPrime)
	src := f.st.ViewOf("DWH_CURR", idx)
	dict := f.st.Dict()
	target := pathTerm(f.l.MartColumns[0])
	origin := pathTerm(f.l.Chains[0][0])
	prefix := `PREFIX dt: <` + rdf.DTNS + `> PREFIX dm: <` + rdf.DMNS + `> `
	queries := []struct{ name, text string }{
		// Backward lineage: the Figure 8 trace as a property path.
		{"path-to-target", prefix + `SELECT ?s WHERE { ?s dt:isMappedTo* <` + target.Value + `> }`},
		// Forward impact closure from a chain origin.
		{"path-impact", prefix + `SELECT ?o WHERE { <` + origin.Value + `> dt:isMappedTo+ ?o }`},
		// Mapping scan joined with names: the morsel-driven strategy.
		{"join", prefix + `SELECT ?s ?n WHERE { ?s dt:isMappedTo ?t . ?s dm:hasName ?n }`},
		// Root-level UNION over the two data-transfer predicates.
		{"union", prefix + `SELECT ?s WHERE { { ?s dt:isMappedTo ?t } UNION { ?s dt:feeds ?t } }`},
	}
	levels := []struct {
		label string
		n     int
	}{{"par=1", 1}, {"par=2", 2}, {"par=4", 4}, {"par=all", sparql.MaxParallelism()}}
	for _, qc := range queries {
		q := sparql.MustParse(qc.text)
		for _, lv := range levels {
			p := q.PlanOpts(src, dict, sparql.ParOptions{MaxWorkers: lv.n})
			b.Run(qc.name+"/"+lv.label, func(b *testing.B) {
				b.ReportMetric(float64(p.Parallelism()), "workers")
				for i := 0; i < b.N; i++ {
					if _, err := p.Exec(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkListing2 runs the paper's Listing 2 lineage SEM_MATCH call.
func BenchmarkListing2(b *testing.B) {
	f := figure3Fixture(b)
	call := `SEM_MATCH(
		{?source_id dt:isMappedTo ?target_id .
		 ?target_id rdf:type dm:Application1_View_Column .
		 ?target_id dm:hasName ?target_name},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(
			SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'),
			SEM_ALIAS('dt', 'http://www.credit-suisse.com/dwh/mdm/data_transfer#')),
		null)`
	req, err := semmatch.ParseCall(call)
	if err != nil {
		b.Fatal(err)
	}
	req.Select = []string{"source_id", "target_id", "target_name"}
	for i := 0; i < b.N; i++ {
		res, err := req.Exec(f.st)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// ---------------------------------------------------------------------
// E7 — Section III.A: historization across release cycles with growth.

func BenchmarkHistorization(b *testing.B) {
	base := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)
	var versions []history.Version
	for i := 0; i < b.N; i++ {
		l := landscape.Generate(landscape.Small())
		st := store.New()
		if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
			b.Fatal(err)
		}
		h := history.NewHistorian(st, "m")
		// Eight releases a year; each adds ~3% new meta-data, matching
		// the paper's 20-30% annual growth.
		for r := 0; r < 8; r++ {
			grow := st.Len("m") * 3 / 100
			var ts []rdf.Triple
			for k := 0; k < grow; k++ {
				iri := rdf.IRI(fmt.Sprintf("%sgen/v%d/i%d", rdf.InstNS, r, k))
				ts = append(ts, rdf.T(iri, rdf.Type, rdf.IRI(rdf.DMNS+"Table")))
			}
			st.AddAll("m", ts)
			v, err := h.Snapshot(fmt.Sprintf("2009-R%d", r+1), base.AddDate(0, 0, r*45))
			if err != nil {
				b.Fatal(err)
			}
			versions = append(versions, v)
		}
		// As-of access and a release diff, the typical audit operations.
		if _, err := h.AsOf(base.AddDate(0, 6, 0)); err != nil {
			b.Fatal(err)
		}
		d, err := h.DiffVersions(1, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Added) == 0 {
			b.Fatal("no growth recorded")
		}
	}
	if len(versions) >= 8 {
		first, last := versions[0], versions[7]
		b.ReportMetric(float64(last.Triples-first.Triples)/float64(first.Triples)*100, "growth-%/yr")
	}
}

// ---------------------------------------------------------------------
// E8 — Section III.B: the OWLPRIME index adds derived edges and changes
// what queries can see.

func BenchmarkOWLPrimeIndex(b *testing.B) {
	f := smallLandscape(b)

	b.Run("materialize", func(b *testing.B) {
		var derived int
		for i := 0; i < b.N; i++ {
			st := store.New()
			l := f.l
			if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
				b.Fatal(err)
			}
			derived = st.Len("m$OWLPRIME")
		}
		b.ReportMetric(float64(derived), "derived-triples")
	})

	q := sparql.MustParse(`PREFIX dm: <` + rdf.DMNS + `>
		SELECT (COUNT(?x) AS ?n) WHERE { ?x a dm:Attribute }`)
	idx := reason.IndexModelName("DWH_CURR", reason.RulebaseOWLPrime)

	b.Run("query-with-index", func(b *testing.B) {
		src := f.st.ViewOf("DWH_CURR", idx)
		var n string
		for i := 0; i < b.N; i++ {
			res, err := q.Exec(src, f.st.Dict())
			if err != nil {
				b.Fatal(err)
			}
			n = res.Rows[0]["n"].Value
		}
		if n == "0" {
			b.Fatal("index query found nothing")
		}
	})
	b.Run("query-facts-only", func(b *testing.B) {
		src := f.st.ViewOf("DWH_CURR")
		for i := 0; i < b.N; i++ {
			res, err := q.Exec(src, f.st.Dict())
			if err != nil {
				b.Fatal(err)
			}
			if res.Rows[0]["n"].Value != "0" {
				b.Fatal("facts-only query saw inferred types")
			}
		}
	})
}

// ---------------------------------------------------------------------
// E9 — Section V: semantic (synonym-expanded) search recall vs. plain
// keyword search.

func BenchmarkSynonymSearch(b *testing.B) {
	f := smallLandscape(b)
	th := dbpedia.FromTriples(dbpedia.Banking())
	mgr := textindex.NewManager(textindex.Config{})
	plain := search.New(f.st, "DWH_CURR", nil).WithIndexManager(mgr)
	semantic := search.New(f.st, "DWH_CURR", th).WithIndexManager(mgr)

	cases := []struct {
		name string
		svc  *search.Service
		opt  search.Options
	}{
		{"plain", plain, search.Options{}},
		{"semantic", semantic, search.Options{Semantic: true}},
	}
	for _, c := range cases {
		for _, mode := range []string{"indexed", "scan"} {
			opt := c.opt
			opt.ForceScan = mode == "scan"
			b.Run(c.name+"/"+mode, func(b *testing.B) {
				if _, err := c.svc.Search("client", opt); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var hits int
				for i := 0; i < b.N; i++ {
					res, err := c.svc.Search("client", opt)
					if err != nil {
						b.Fatal(err)
					}
					hits = res.Instances
				}
				b.ReportMetric(float64(hits), "hits")
			})
		}
	}
}

// ---------------------------------------------------------------------
// E10 — Section III: graph flexibility vs. the textbook relational
// schema when a new meta-data kind arrives.

func BenchmarkGraphVsRelational(b *testing.B) {
	l := landscape.Generate(landscape.Small())
	var plain []*staging.Export
	var concepts []*staging.Export
	for _, e := range l.Exports {
		stripped := *e
		stripped.Concepts = nil
		plain = append(plain, &stripped)
		if len(e.Concepts) > 0 {
			concepts = append(concepts, &staging.Export{Concepts: e.Concepts})
		}
	}

	b.Run("graph-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := store.New()
			if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(plain, l.Ontology.Triples()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("relational-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := relstore.NewTextbook()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.LoadExports(plain); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("graph-new-kind", func(b *testing.B) {
		st := store.New()
		if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(plain, l.Ontology.Triples()); err != nil {
			b.Fatal(err)
		}
		tbl := staging.NewTable()
		for _, e := range concepts {
			if err := tbl.InsertExport(e); err != nil {
				b.Fatal(err)
			}
		}
		newTriples := tbl.Triples()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.AddAll("m", newTriples) // idempotent after the first pass
		}
		b.ReportMetric(0, "ddl-statements")
	})
	b.Run("relational-new-kind", func(b *testing.B) {
		var ddl int
		for i := 0; i < b.N; i++ {
			c, err := relstore.NewTextbook()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.LoadExports(plain); err != nil {
				b.Fatal(err)
			}
			n, err := c.MigrateForConcepts()
			if err != nil {
				b.Fatal(err)
			}
			if err := c.LoadConcepts(concepts); err != nil {
				b.Fatal(err)
			}
			ddl = n
		}
		b.ReportMetric(float64(ddl), "ddl-statements")
	})
}

// ---------------------------------------------------------------------
// E11 — Section V: lineage path explosion across stages, with and
// without rule-condition filters.

func BenchmarkLineagePathExplosion(b *testing.B) {
	const width = 3
	build := func(stages int) (*store.Store, rdf.Term) {
		st := store.New()
		node := func(s, i int) rdf.Term {
			return rdf.IRI(fmt.Sprintf("%sexp/s%d_n%d", rdf.InstNS, s, i))
		}
		rules := []string{"country = 'CH'", "amount > 0", ""}
		for s := 0; s+1 < stages; s++ {
			for i := 0; i < width; i++ {
				for j := 0; j < width; j++ {
					from, to := node(s, i), node(s+1, j)
					st.Add("m", rdf.T(from, rdf.IsMappedTo, to))
					m := rdf.IRI(fmt.Sprintf("%sexp/map_s%d_%d_%d", rdf.InstNS, s, i, j))
					st.Add("m", rdf.T(m, rdf.IRI(rdf.MDWMapsFrom), from))
					st.Add("m", rdf.T(m, rdf.IRI(rdf.MDWMapsTo), to))
					st.Add("m", rdf.T(m, rdf.IRI(rdf.MDWRuleCond), rdf.Literal(rules[(i+j)%len(rules)])))
				}
			}
		}
		return st, node(stages-1, 0)
	}
	for _, stages := range []int{3, 5, 7} {
		st, target := build(stages)
		svc := lineage.New(st, "m")
		b.Run(fmt.Sprintf("stages=%d/unfiltered", stages), func(b *testing.B) {
			var paths int
			for i := 0; i < b.N; i++ {
				n, err := svc.CountPaths(target, lineage.Backward, lineage.Options{})
				if err != nil {
					b.Fatal(err)
				}
				paths = n
			}
			b.ReportMetric(float64(paths), "paths")
		})
		b.Run(fmt.Sprintf("stages=%d/rule-filtered", stages), func(b *testing.B) {
			filter := func(rule string) bool { return strings.Contains(rule, "CH") }
			var paths int
			for i := 0; i < b.N; i++ {
				n, err := svc.CountPaths(target, lineage.Backward, lineage.Options{RuleFilter: filter})
				if err != nil {
					b.Fatal(err)
				}
				paths = n
			}
			b.ReportMetric(float64(paths), "paths")
		})
	}
}

// ---------------------------------------------------------------------
// E12 — Section VII future work: learn a relational schema from the
// evolved graph and measure how much of it the schema captures.

func BenchmarkSchemaLearning(b *testing.B) {
	f := smallLandscape(b)
	src := f.st.ViewOf("DWH_CURR")
	var schema *schemalearn.Schema
	b.Run("learn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			schema = schemalearn.Learn(src, f.st.Dict(), schemalearn.DefaultOptions())
		}
		b.ReportMetric(float64(len(schema.Tables)), "tables")
		b.ReportMetric(schema.Coverage()*100, "coverage-%")
	})
	b.Run("migrate", func(b *testing.B) {
		schema = schemalearn.Learn(src, f.st.Dict(), schemalearn.DefaultOptions())
		var rows, uncovered int
		for i := 0; i < b.N; i++ {
			cat := relstore.New()
			if err := schema.Apply(cat); err != nil {
				b.Fatal(err)
			}
			var err error
			rows, uncovered, err = schemalearn.Migrate(src, f.st.Dict(), schema, cat)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rows), "rows")
		b.ReportMetric(float64(uncovered), "uncovered-triples")
	})
}

// ---------------------------------------------------------------------
// E13 — the roles use case (Section II): access audits, direct and
// lineage-extended.

func BenchmarkAccessAudit(b *testing.B) {
	f := smallLandscape(b)
	svc := audit.New(f.st, "DWH_CURR")
	target := pathTerm(f.l.MartColumns[0])
	b.Run("direct", func(b *testing.B) {
		var users int
		for i := 0; i < b.N; i++ {
			rep, err := svc.WhoCanAccess(target, false)
			if err != nil {
				b.Fatal(err)
			}
			users = len(rep.Users())
		}
		b.ReportMetric(float64(users), "users")
	})
	b.Run("with-lineage", func(b *testing.B) {
		var users int
		for i := 0; i < b.N; i++ {
			rep, err := svc.WhoCanAccess(target, true)
			if err != nil {
				b.Fatal(err)
			}
			users = len(rep.Users())
		}
		b.ReportMetric(float64(users), "users")
	})
}

// ---------------------------------------------------------------------
// E14 — change management: release diff → forward lineage → affected
// applications and reports.

func BenchmarkReleaseImpact(b *testing.B) {
	// Build two releases with organic evolution between them.
	l := landscape.Generate(landscape.Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		b.Fatal(err)
	}
	h := history.NewHistorian(st, "m")
	if _, err := h.Snapshot("R1", time.Date(2009, 1, 15, 0, 0, 0, 0, time.UTC)); err != nil {
		b.Fatal(err)
	}
	if _, err := landscape.Evolve(l, 2, 0.05); err != nil {
		b.Fatal(err)
	}
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, nil); err != nil {
		b.Fatal(err)
	}
	if _, err := h.Snapshot("R2", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		b.Fatal(err)
	}
	a := impact.New(st, h)
	var changed, apps int
	for i := 0; i < b.N; i++ {
		an, err := a.Analyze(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		changed, apps = len(an.Changed), len(an.Applications)
	}
	b.ReportMetric(float64(changed), "changed-items")
	b.ReportMetric(float64(apps), "affected-apps")
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks: the primitives everything above rests on.

// Ablation: the paper's base/index model separation makes every indexed
// query a two-model union view with cross-model deduplication. This
// measures that design's overhead against a hypothetical single merged
// model.
func BenchmarkViewUnionAblation(b *testing.B) {
	f := smallLandscape(b)
	idx := reason.IndexModelName("DWH_CURR", reason.RulebaseOWLPrime)

	// Build the merged alternative once.
	merged := store.New()
	f.st.ForEach("DWH_CURR", rdf.Term{}, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
		merged.Add("all", t)
		return true
	})
	f.st.ForEach(idx, rdf.Term{}, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
		merged.Add("all", t)
		return true
	})

	q := sparql.MustParse(`PREFIX dm: <` + rdf.DMNS + `>
		SELECT (COUNT(?x) AS ?n) WHERE { ?x a dm:Attribute . ?x dm:hasName ?name }`)

	b.Run("two-model-view", func(b *testing.B) {
		src := f.st.ViewOf("DWH_CURR", idx)
		for i := 0; i < b.N; i++ {
			if _, err := q.Exec(src, f.st.Dict()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("merged-model", func(b *testing.B) {
		src := merged.ViewOf("all")
		for i := 0; i < b.N; i++ {
			if _, err := q.Exec(src, merged.Dict()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: search latency as the landscape grows (series over scale
// factors).
func BenchmarkSearchScaling(b *testing.B) {
	for _, factor := range []int{1, 2, 4} {
		cfg := landscape.Small()
		cfg.SourceApps *= factor
		cfg.TablesPerSchema *= factor
		l := landscape.Generate(cfg)
		st := store.New()
		if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
			b.Fatal(err)
		}
		svc := search.New(st, "m", nil)
		b.Run(fmt.Sprintf("apps=%d", cfg.SourceApps), func(b *testing.B) {
			var hits int
			for i := 0; i < b.N; i++ {
				res, err := svc.Search("customer", search.Options{})
				if err != nil {
					b.Fatal(err)
				}
				hits = res.Instances
			}
			b.ReportMetric(float64(hits), "hits")
			b.ReportMetric(float64(st.Len("m")), "triples")
		})
	}
}

func BenchmarkStoreAdd(b *testing.B) {
	st := store.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Add("m", rdf.T(
			rdf.IRI(fmt.Sprintf("%sn%d", rdf.InstNS, i)),
			rdf.Type,
			rdf.IRI(rdf.DMNS+"Table"),
		))
	}
}

func BenchmarkStorePatternMatch(b *testing.B) {
	f := smallLandscape(b)
	pred := rdf.IRI(rdf.MDWHasName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		f.st.ForEach("DWH_CURR", rdf.Term{}, pred, rdf.Term{}, func(rdf.Triple) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkSPARQLJoin(b *testing.B) {
	f := smallLandscape(b)
	idx := reason.IndexModelName("DWH_CURR", reason.RulebaseOWLPrime)
	src := f.st.ViewOf("DWH_CURR", idx)
	q := sparql.MustParse(`PREFIX dm: <` + rdf.DMNS + `> PREFIX dt: <` + rdf.DTNS + `>
		SELECT ?name WHERE {
			?x dt:isMappedTo ?y .
			?y dm:hasName ?name .
		}`)
	for i := 0; i < b.N; i++ {
		if _, err := q.Exec(src, f.st.Dict()); err != nil {
			b.Fatal(err)
		}
	}
}
